#!/usr/bin/env python3
"""Offline link checker for README.md and docs/.

Verifies, without any network access:
  - relative links point at files (or directories) that exist,
  - intra-document and cross-document anchors (#fragment) resolve to a
    heading in the target file,
  - reference pointers into the tree written as inline code spans are
    not checked (they are prose, not links).

External links (http/https/mailto) are only syntax-checked, never
fetched — CI must stay deterministic and offline.

Exit status is non-zero on any broken link; the report is designed to
be warn-free on a healthy tree ("offline, warn-free" CI gate).

Usage: check_markdown_links.py [ROOT]   (default: repo root = cwd)
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def anchor_of(heading: str) -> str:
    """GitHub-style anchor slug of a heading line."""
    text = heading.strip().lower()
    # Drop markdown emphasis/code markers and everything non-word.
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.strip().replace(" ", "-")


def markdown_files(root: str):
    yield os.path.join(root, "README.md")
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def collect_anchors(path: str):
    anchors = set()
    in_fence = False
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if m:
                    anchors.add(anchor_of(m.group(1)))
    except OSError:
        pass
    return anchors


def check_file(path: str, root: str, anchor_cache: dict):
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(2)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                base, _, fragment = target.partition("#")
                if base:
                    dest = os.path.normpath(
                        os.path.join(os.path.dirname(path), base))
                else:
                    dest = path  # pure in-page anchor
                if not os.path.exists(dest):
                    errors.append(
                        f"{os.path.relpath(path, root)}:{lineno}: "
                        f"broken link -> {target}")
                    continue
                if fragment and dest.endswith(".md"):
                    if dest not in anchor_cache:
                        anchor_cache[dest] = collect_anchors(dest)
                    if fragment not in anchor_cache[dest]:
                        errors.append(
                            f"{os.path.relpath(path, root)}:{lineno}: "
                            f"missing anchor -> {target}")
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    anchor_cache = {}
    all_errors = []
    checked = 0
    for path in markdown_files(root):
        if not os.path.exists(path):
            all_errors.append(f"missing expected file: {path}")
            continue
        checked += 1
        all_errors.extend(check_file(path, root, anchor_cache))
    if all_errors:
        print(f"{len(all_errors)} broken link(s) in {checked} file(s):")
        for err in all_errors:
            print("  " + err)
        return 1
    print(f"all links OK across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

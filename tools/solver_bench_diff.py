#!/usr/bin/env python3
"""Commit-over-commit diff of two BENCH_solver.json files.

Usage: solver_bench_diff.py PREVIOUS.json CURRENT.json [--summary PATH]

Compares the per-layer solve-time geomean and the schedule-cycles
geomean between the previous run's artifact and the current run, prints
a markdown report (appended to --summary when given, e.g.
$GITHUB_STEP_SUMMARY), and emits GitHub `::warning::` annotations on
regressions. Always exits 0 — the trajectory is advisory; CI warns, it
does not fail (per-commit noise on shared runners would make a hard
gate flaky).
"""

import argparse
import json
import math
import sys

# Thresholds for the warn annotations. Solve time is wall clock on a
# shared runner, so it gets a generous band; schedule cycles are fully
# deterministic at a fixed work limit, so any growth is real.
TIME_WARN_RATIO = 1.10
CYCLES_WARN_RATIO = 1.001


def geomean(values):
    vals = [v for v in values if v and v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def load(path):
    with open(path) as f:
        return json.load(f)


def layer_map(bench):
    return {l["layer"]: l for l in bench.get("layers", [])}


def fmt_ratio(ratio):
    if math.isnan(ratio):
        return "n/a"
    sign = "+" if ratio >= 1 else ""
    return f"{ratio:.3f}x ({sign}{(ratio - 1) * 100:.1f}%)"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("previous")
    ap.add_argument("current")
    ap.add_argument("--summary", help="markdown file to append to")
    args = ap.parse_args()

    try:
        prev = load(args.previous)
    except (OSError, json.JSONDecodeError) as e:
        print(f"no usable previous artifact ({e}); skipping diff")
        return 0
    cur = load(args.current)

    lines = ["## Solver benchmark vs previous run", ""]
    warnings = []

    comparable = prev.get("work_limit") == cur.get("work_limit") and prev.get(
        "presolve"
    ) == cur.get("presolve")
    if not comparable:
        lines.append(
            f"previous run used work_limit={prev.get('work_limit')} "
            f"presolve={prev.get('presolve')}, current uses "
            f"work_limit={cur.get('work_limit')} "
            f"presolve={cur.get('presolve')} — geomeans not comparable."
        )
    else:
        prev_layers = layer_map(prev)
        cur_layers = layer_map(cur)
        shared = sorted(set(prev_layers) & set(cur_layers))

        time_ratio = geomean(
            [
                cur_layers[n]["solve_time_sec"]
                / max(prev_layers[n]["solve_time_sec"], 1e-9)
                for n in shared
            ]
        )
        cycles_ratio = geomean(
            [
                cur_layers[n]["cycles"] / max(prev_layers[n]["cycles"], 1e-9)
                for n in shared
                if cur_layers[n].get("found") and prev_layers[n].get("found")
            ]
        )

        lines += [
            "| metric | previous | current | ratio |",
            "| --- | --- | --- | --- |",
            "| geomean solve time [s/layer] | "
            f"{prev.get('geomean_solve_time_sec', float('nan')):.3f} | "
            f"{cur.get('geomean_solve_time_sec', float('nan')):.3f} | "
            f"{fmt_ratio(time_ratio)} |",
            "| geomean schedule cycles (shared layers) | — | — | "
            f"{fmt_ratio(cycles_ratio)} |",
            f"| layers found | {prev.get('num_found')}"
            f"/{prev.get('num_layers')} | {cur.get('num_found')}"
            f"/{cur.get('num_layers')} | |",
            "",
            f"{len(shared)} shared layers compared.",
        ]

        if time_ratio > TIME_WARN_RATIO:
            warnings.append(
                f"solver geomean solve time regressed {fmt_ratio(time_ratio)} "
                "vs the previous run"
            )
        if cycles_ratio > CYCLES_WARN_RATIO:
            warnings.append(
                f"schedule quality regressed: geomean cycles {fmt_ratio(cycles_ratio)} "
                "vs the previous run at the same work limit"
            )
        if cur.get("num_found", 0) < prev.get("num_found", 0):
            warnings.append(
                f"fewer layers solved: {cur.get('num_found')} < {prev.get('num_found')}"
            )

    report = "\n".join(lines)
    print(report)
    for w in warnings:
        print(f"::warning title=solver-bench::{w}")
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(report + "\n")
            if warnings:
                f.write(
                    "\n"
                    + "\n".join(f"> :warning: {w}" for w in warnings)
                    + "\n"
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#include <gtest/gtest.h>

#include "cosa/greedy.hpp"
#include "mapper/random_mapper.hpp"
#include "model/analytical_model.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

/**
 * Property sweep over every ResNet-50 layer: the analytical model must
 * satisfy basic physical invariants for the greedy schedule.
 */
class ModelInvariants : public ::testing::TestWithParam<int>
{
  protected:
    LayerSpec
    layer() const
    {
        return workloads::resNet50()
            .layers[static_cast<std::size_t>(GetParam())];
    }
};

TEST_P(ModelInvariants, GreedyScheduleRespectsPhysicalBounds)
{
    const LayerSpec spec = layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(spec, arch);
    const Mapping mapping = greedyMapping(spec, arch);
    const Evaluation ev = model.evaluate(mapping);
    ASSERT_TRUE(ev.valid) << ev.invalid_reason;

    // Latency covers both compute and the slowest memory level.
    EXPECT_GE(ev.cycles, ev.compute_cycles);
    EXPECT_GE(ev.cycles, ev.memory_cycles);

    // Compute cycles can never beat total MACs / peak parallelism.
    const double peak = 16.0 * 64.0;
    EXPECT_GE(ev.compute_cycles + 1e-9,
              static_cast<double>(spec.macs()) / peak);

    // Every tensor must cross DRAM at least once (cold start).
    double min_dram = 0.0;
    for (Tensor t : kAllTensors) {
        min_dram += static_cast<double>(spec.tensorElements(t)) *
                    arch.tensorBytes(t);
    }
    EXPECT_GE(ev.dram_bytes * 1.0001 + 1.0, min_dram * 0.5)
        << "DRAM traffic below half the cold-start minimum";

    // Energy decomposition adds up.
    double level_sum = 0.0;
    for (double e : ev.level_energy_pj)
        level_sum += e;
    EXPECT_NEAR(ev.energy_pj,
                level_sum + ev.mac_energy_pj + ev.noc_energy_pj,
                ev.energy_pj * 1e-9 + 1e-6);

    // Utilization is a fraction.
    EXPECT_GT(ev.spatial_utilization, 0.0);
    EXPECT_LE(ev.spatial_utilization, 1.0);
}

TEST_P(ModelInvariants, ValidRandomSchedulesAlsoRespectBounds)
{
    const LayerSpec spec = layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(spec, arch);
    RandomMapperConfig config;
    config.seed = 17 + static_cast<std::uint64_t>(GetParam());
    RandomMapper mapper(config);
    const auto samples = mapper.sampleValid(spec, arch, 3, 50'000);
    for (const auto& [mapping, ev] : samples) {
        EXPECT_GE(ev.cycles, ev.compute_cycles);
        EXPECT_GT(ev.energy_pj, 0.0);
        EXPECT_GE(ev.total_macs, spec.macs()); // padding only grows it
    }
}

INSTANTIATE_TEST_SUITE_P(ResNet50, ModelInvariants,
                         ::testing::Range(0, 23));

/**
 * Cross-platform consistency: for schedules that differ only in how
 * much they re-stream weights, the analytical model and the NoC
 * simulator must agree on the *ordering*.
 */
TEST(ModelVsIntuition, MoreReuseNeverCostsEnergy)
{
    const LayerSpec spec = LayerSpec::fromLabel("3_14_128_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(spec, arch);
    auto make = [&](bool stationary) {
        Mapping m;
        m.levels.resize(6);
        m.levels[1] = {{Dim::R, 3, false}, {Dim::S, 3, false}};
        m.levels[2] = {{Dim::C, 32, false}};
        m.levels[3] = {{Dim::C, 4, true}};
        m.levels[4] = {{Dim::K, 16, true}};
        if (stationary) {
            m.levels[5] = {{Dim::K, 16, false}, {Dim::P, 14, false},
                           {Dim::Q, 14, false}};
        } else {
            m.levels[5] = {{Dim::P, 14, false}, {Dim::Q, 14, false},
                           {Dim::K, 16, false}};
        }
        return m;
    };
    const Evaluation good = model.evaluate(make(true));
    const Evaluation bad = model.evaluate(make(false));
    ASSERT_TRUE(good.valid && bad.valid);
    EXPECT_LT(good.dram_bytes, bad.dram_bytes);
    EXPECT_LE(good.energy_pj, bad.energy_pj);
}

} // namespace
} // namespace cosa

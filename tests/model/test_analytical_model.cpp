#include <gtest/gtest.h>

#include "mapping/mapspace.hpp"
#include "model/analytical_model.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

/** All loops temporal at DRAM: trivially valid, worst-case schedule. */
Mapping
allAtDram(const LayerSpec& layer, const ArchSpec& arch)
{
    FactorPool pool(layer);
    FactorAssignment a;
    a.level.assign(static_cast<std::size_t>(pool.size()),
                   arch.dramLevel());
    a.spatial.assign(static_cast<std::size_t>(pool.size()), false);
    return buildMapping(pool, a, arch);
}

TEST(AnalyticalModel, AllTemporalComputeCyclesEqualMacs)
{
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(layer, arch);
    const Mapping m = allAtDram(layer, arch);
    const Evaluation ev = model.evaluate(m);
    ASSERT_TRUE(ev.valid) << ev.invalid_reason;
    EXPECT_DOUBLE_EQ(ev.compute_cycles, static_cast<double>(layer.macs()));
    EXPECT_EQ(ev.total_macs, layer.macs());
    EXPECT_GT(ev.cycles, 0.0);
    EXPECT_GT(ev.energy_pj, 0.0);
}

TEST(AnalyticalModel, SpatialMappingReducesComputeCycles)
{
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(layer, arch);

    // Temporal-only schedule vs the same schedule with K=16 spatial at
    // the GlobalBuf level.
    FactorPool pool(layer);
    FactorAssignment temporal;
    temporal.level.assign(static_cast<std::size_t>(pool.size()), 5);
    temporal.spatial.assign(static_cast<std::size_t>(pool.size()), false);

    FactorAssignment spatial = temporal;
    int moved = 0;
    for (int f = 0; f < pool.size() && moved < 4; ++f) {
        if (pool[f].dim == Dim::K && pool[f].value == 2) {
            spatial.level[f] = 4;
            spatial.spatial[f] = true;
            ++moved;
        }
    }
    ASSERT_EQ(moved, 4);

    const Evaluation ev_t = model.evaluate(buildMapping(pool, temporal, arch));
    const Evaluation ev_s = model.evaluate(buildMapping(pool, spatial, arch));
    ASSERT_TRUE(ev_t.valid) << ev_t.invalid_reason;
    ASSERT_TRUE(ev_s.valid) << ev_s.invalid_reason;
    EXPECT_DOUBLE_EQ(ev_s.compute_cycles, ev_t.compute_cycles / 16.0);
    EXPECT_GT(ev_s.spatial_utilization, ev_t.spatial_utilization);
}

TEST(AnalyticalModel, InvalidMappingRejected)
{
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(layer, arch);
    Mapping m; // empty: does not cover any dimension
    m.levels.resize(6);
    const Evaluation ev = model.evaluate(m);
    EXPECT_FALSE(ev.valid);
    EXPECT_FALSE(ev.invalid_reason.empty());
}

TEST(AnalyticalModel, ReuseRoundsInnermostRelevantRule)
{
    // For weights (relevant: R,S,C,K), an outer irrelevant P loop above
    // the weight buffer forces refetch only when a relevant loop sits
    // inside it.
    Mapping m;
    m.levels.resize(6);
    m.levels[4] = {{Dim::P, 7, false}};             // irrelevant to W
    EXPECT_DOUBLE_EQ(AnalyticalModel::reuseRounds(m, Tensor::Weights, 2),
                     1.0); // no relevant loop outside WBuf -> full reuse

    m.levels[4] = {{Dim::P, 7, false}, {Dim::C, 4, false}};
    // Order within level is outermost-first: P outside C. C is relevant,
    // so both C and the P outside it count: 28 rounds.
    EXPECT_DOUBLE_EQ(AnalyticalModel::reuseRounds(m, Tensor::Weights, 2),
                     28.0);

    m.levels[4] = {{Dim::C, 4, false}, {Dim::P, 7, false}};
    // P inside-most, C outside: P is inside the innermost relevant loop?
    // No: C is relevant and OUTSIDE P, so only C counts -> 4 rounds.
    EXPECT_DOUBLE_EQ(AnalyticalModel::reuseRounds(m, Tensor::Weights, 2),
                     4.0);
}

TEST(AnalyticalModel, ReuseRoundsSkipsSpatialLoops)
{
    Mapping m;
    m.levels.resize(6);
    m.levels[4] = {{Dim::C, 4, true}, {Dim::K, 2, false}};
    // Spatial C does not iterate in time; temporal K is relevant.
    EXPECT_DOUBLE_EQ(AnalyticalModel::reuseRounds(m, Tensor::Weights, 2),
                     2.0);
}

TEST(AnalyticalModel, PermutationAffectsTraffic)
{
    // Fig. 3's premise: on a weight-heavy layer, placing the K loop
    // outermost (inside nothing weight-irrelevant) reuses each weight
    // tile fully, while P/Q outermost refetch weights per output tile.
    const LayerSpec layer = workloads::fig3Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(layer, arch);

    auto make = [&](bool p_outer) {
        Mapping m;
        m.levels.resize(6);
        m.levels[1] = {{Dim::R, 3, false}, {Dim::S, 3, false}};
        m.levels[2] = {{Dim::C, 8, false}, {Dim::K, 8, false}};
        m.levels[3] = {{Dim::C, 4, true}};
        m.levels[4] = {{Dim::K, 8, true}};
        if (p_outer) {
            m.levels[5] = {{Dim::P, 8, false}, {Dim::Q, 8, false},
                           {Dim::K, 16, false}};
        } else {
            m.levels[5] = {{Dim::K, 16, false}, {Dim::P, 8, false},
                           {Dim::Q, 8, false}};
        }
        return m;
    };
    const Evaluation outer = model.evaluate(make(true));
    const Evaluation inner = model.evaluate(make(false));
    ASSERT_TRUE(outer.valid) << outer.invalid_reason;
    ASSERT_TRUE(inner.valid) << inner.invalid_reason;
    // Identical tiling and spatial mapping; only loop order differs.
    EXPECT_LT(inner.noc_bytes, outer.noc_bytes);
    EXPECT_LT(inner.energy_pj, outer.energy_pj);
}

TEST(AnalyticalModel, MulticastDedupAtTheGlobalBufferReadPort)
{
    // Spatial K at the GB level is irrelevant to inputs: all 4 PE groups
    // receive the *same* input tile. The GB read port therefore sees
    // roughly a quarter of the bytes written into the replicated input
    // buffers (multicast dedup); without multicast they would be equal.
    LayerSpec layer;
    layer.name = "dedup";
    layer.r = layer.s = 1;
    layer.p = layer.q = 8;
    layer.c = 64;
    layer.k = 4;
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(layer, arch);

    Mapping m;
    m.levels.resize(6);
    m.levels[3] = {{Dim::C, 64, false}};
    m.levels[4] = {{Dim::P, 8, false}, {Dim::Q, 8, false},
                   {Dim::K, 4, true}};
    const Evaluation ev = model.evaluate(m);
    ASSERT_TRUE(ev.valid) << ev.invalid_reason;
    // writes into InputBuf (level 3) are pure input fills; GB reads are
    // the deduped multicast payloads plus small output read-backs.
    EXPECT_LT(ev.reads_bytes[4], 0.5 * ev.writes_bytes[3]);
    EXPECT_GT(ev.writes_bytes[3], 0.0);
}

TEST(AnalyticalModel, EnergyDominatedByDramForStreamingSchedules)
{
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(layer, arch);
    const Evaluation ev = model.evaluate(allAtDram(layer, arch));
    ASSERT_TRUE(ev.valid);
    const double dram_energy = ev.level_energy_pj[5];
    EXPECT_GT(dram_energy, 0.25 * ev.energy_pj);
}

TEST(AnalyticalModel, EvaluationBreakdownsConsistent)
{
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel model(layer, arch);
    const Evaluation ev = model.evaluate(allAtDram(layer, arch));
    ASSERT_TRUE(ev.valid);
    double level_sum = 0.0;
    for (double e : ev.level_energy_pj)
        level_sum += e;
    EXPECT_NEAR(ev.energy_pj,
                level_sum + ev.mac_energy_pj + ev.noc_energy_pj, 1e-6);
    EXPECT_DOUBLE_EQ(ev.cycles,
                     std::max(ev.compute_cycles, ev.memory_cycles));
    EXPECT_GT(ev.edp(), 0.0);
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include "engine/scheduling_engine.hpp"
#include "mapper/random_mapper.hpp"
#include "model/evaluator.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

RandomMapperConfig
fastRandomConfig()
{
    RandomMapperConfig config;
    config.max_samples = 500;
    config.target_valid = 3;
    return config;
}

TEST(SearchObjectiveNames, RoundTrip)
{
    for (SearchObjective objective :
         {SearchObjective::Latency, SearchObjective::Energy,
          SearchObjective::Edp}) {
        SearchObjective parsed = SearchObjective::Latency;
        ASSERT_TRUE(
            parseSearchObjective(searchObjectiveName(objective), &parsed));
        EXPECT_EQ(parsed, objective);
    }
    SearchObjective parsed = SearchObjective::Energy;
    EXPECT_FALSE(parseSearchObjective("throughput", &parsed));
    EXPECT_EQ(parsed, SearchObjective::Energy); // untouched on failure
}

TEST(EvaluatorFingerprints, DistinguishBackendsAndConfigs)
{
    const AnalyticalEvaluator analytical;
    const NocSimEvaluator nocsim;
    const CascadeEvaluator cascade;
    EXPECT_NE(analytical.fingerprint(), nocsim.fingerprint());
    EXPECT_NE(analytical.fingerprint(), cascade.fingerprint());
    EXPECT_NE(nocsim.fingerprint(), cascade.fingerprint());

    // Any simulator tunable that changes results changes the key.
    ScheduleSimConfig other;
    other.dram.t_cas += 1;
    EXPECT_NE(NocSimEvaluator(other).fingerprint(), nocsim.fingerprint());
    EXPECT_NE(CascadeEvaluator(2).fingerprint(),
              CascadeEvaluator(4).fingerprint());
    // Same config => same key (the cache contract).
    EXPECT_EQ(NocSimEvaluator().fingerprint(), nocsim.fingerprint());
}

TEST(AnalyticalEvaluator, MatchesDirectModel)
{
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const SearchResult found =
        RandomMapper(fastRandomConfig()).schedule(layer, arch);
    ASSERT_TRUE(found.found);

    const AnalyticalEvaluator evaluator;
    const Evaluation via_evaluator =
        evaluator.evaluate(found.mapping, layer, arch);
    const Evaluation direct =
        AnalyticalModel(layer, arch).evaluate(found.mapping);
    ASSERT_TRUE(via_evaluator.valid);
    EXPECT_EQ(via_evaluator.cycles, direct.cycles);
    EXPECT_EQ(via_evaluator.energy_pj, direct.energy_pj);
    EXPECT_TRUE(evaluator.searchIsExact());
}

TEST(NocSimEvaluator, OverlaysSimulatedCyclesOnAnalyticalEvaluation)
{
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const SearchResult found =
        RandomMapper(fastRandomConfig()).schedule(layer, arch);
    ASSERT_TRUE(found.found);

    const NocSimEvaluator evaluator;
    const Evaluation ev = evaluator.evaluate(found.mapping, layer, arch);
    ASSERT_TRUE(ev.valid);

    const SimResult sim =
        ScheduleSimulator(layer, arch).simulate(found.mapping);
    ASSERT_TRUE(sim.ok);
    EXPECT_EQ(ev.cycles, static_cast<double>(sim.cycles));
    // Energy and the search-time pruning stay analytical.
    const Evaluation analytical =
        AnalyticalModel(layer, arch).evaluate(found.mapping);
    EXPECT_EQ(ev.energy_pj, analytical.energy_pj);
    const auto bound = evaluator.bind(layer, arch);
    EXPECT_EQ(bound->searchEvaluate(found.mapping).cycles,
              analytical.cycles);
}

TEST(NocSimEvaluator, SearchWinnerMatchesHistoricalDirectFlow)
{
    // The fig10 acceptance property: searching through the evaluator
    // must reproduce the historical flow — analytical search picks the
    // mapping, one simulation re-scores it — bit for bit.
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const RandomMapper mapper(fastRandomConfig());

    const SearchResult direct = mapper.schedule(layer, arch);
    ASSERT_TRUE(direct.found);
    const SimResult direct_sim =
        ScheduleSimulator(layer, arch).simulate(direct.mapping);
    ASSERT_TRUE(direct_sim.ok);

    const NocSimEvaluator evaluator;
    const SearchResult via = mapper.schedule(layer, arch, evaluator);
    ASSERT_TRUE(via.found);
    EXPECT_EQ(via.mapping, direct.mapping);
    EXPECT_EQ(via.eval.cycles, static_cast<double>(direct_sim.cycles));
    EXPECT_EQ(via.stats.samples, direct.stats.samples);
    EXPECT_EQ(via.stats.valid_evaluated, direct.stats.valid_evaluated);
}

TEST(CascadeEvaluator, WinnerAgreesWithDirectScheduleSim)
{
    // The cascade keeps the analytical top-k and lets the simulator
    // pick: its winner's reported cycles must equal a direct
    // ScheduleSimulator run on that same mapping, and no other kept
    // candidate may simulate strictly faster.
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    RandomMapperConfig config = fastRandomConfig();
    config.target_valid = 8; // enough candidates to fill the cascade
    const RandomMapper mapper(config);

    const CascadeEvaluator cascade(4);
    const SearchResult result = mapper.schedule(layer, arch, cascade);
    ASSERT_TRUE(result.found);

    const ScheduleSimulator sim(layer, arch);
    const SimResult winner_sim = sim.simulate(result.mapping);
    ASSERT_TRUE(winner_sim.ok);
    EXPECT_EQ(result.eval.cycles, static_cast<double>(winner_sim.cycles));

    // Reconstruct the analytical top-k the cascade saw and verify its
    // choice is sim-optimal among them (sampleValid draws the same
    // deterministic candidate sequence schedule() searched).
    const auto cascade_bound = cascade.bind(layer, arch);
    CandidateSelector select(cascade, *cascade_bound, config.objective);
    const auto valid = mapper.sampleValid(layer, arch, config.target_valid,
                                          config.max_samples);
    for (const auto& [mapping, ev] : valid)
        select.offer(mapping, ev);
    ASSERT_FALSE(select.empty());
    const auto winner = select.finalize();
    ASSERT_TRUE(winner.has_value());
    EXPECT_EQ(winner->mapping, result.mapping);
    EXPECT_EQ(winner->eval.cycles, result.eval.cycles);
}

TEST(CandidateSelector, KeepsTopKDropsDuplicatesBreaksTiesEarlier)
{
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const AnalyticalEvaluator analytical;
    const auto bound = analytical.bind(layer, arch);

    CandidateSelector select(analytical, *bound, SearchObjective::Latency);
    Mapping a, b;
    a.levels = {{Loop{Dim::R, 2, false}}};
    b.levels = {{Loop{Dim::S, 3, false}}};
    Evaluation fast, slow;
    fast.valid = slow.valid = true;
    fast.cycles = 10.0;
    slow.cycles = 20.0;

    EXPECT_TRUE(select.offer(a, slow));   // first offer is the best
    EXPECT_FALSE(select.offer(a, slow));  // duplicate dropped
    EXPECT_TRUE(select.offer(b, fast));   // strictly better
    EXPECT_DOUBLE_EQ(select.bestSearchMetric(), 10.0);
    // Analytical is exact: finalize returns the best candidate as-is.
    const auto winner = select.finalize();
    ASSERT_TRUE(winner.has_value());
    EXPECT_EQ(winner->mapping, b);
    EXPECT_DOUBLE_EQ(winner->eval.cycles, 10.0);
}

} // namespace
} // namespace cosa

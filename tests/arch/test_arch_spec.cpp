#include <gtest/gtest.h>

#include "arch/arch_spec.hpp"

namespace cosa {
namespace {

TEST(ArchSpec, SimbaBaselineMatchesTableV)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    EXPECT_EQ(arch.noc_x, 4);
    EXPECT_EQ(arch.noc_y, 4);
    EXPECT_EQ(arch.numPEs(), 16);
    EXPECT_EQ(arch.macs_per_pe, 64);
    EXPECT_EQ(arch.weight_bits, 8);
    EXPECT_EQ(arch.input_bits, 8);
    EXPECT_EQ(arch.output_bits, 24);
    ASSERT_EQ(arch.numLevels(), 6);
    EXPECT_EQ(arch.levels[0].name, "Register");
    EXPECT_EQ(arch.levels[0].capacity_bytes, 64);
    EXPECT_EQ(arch.levels[1].capacity_bytes, 3 * 1024);  // AccBuf
    EXPECT_EQ(arch.levels[2].capacity_bytes, 32 * 1024); // WBuf
    EXPECT_EQ(arch.levels[3].capacity_bytes, 8 * 1024);  // InputBuf
    EXPECT_EQ(arch.levels[4].capacity_bytes, 128 * 1024);
    EXPECT_TRUE(arch.levels[5].unbounded());
}

TEST(ArchSpec, MatrixBMatchesPaperTableIV)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    // Register stores all three tensors.
    for (Tensor t : kAllTensors)
        EXPECT_TRUE(arch.levels[0].storesTensor(t));
    // AccBuf only outputs, WBuf only weights, InputBuf only inputs.
    EXPECT_TRUE(arch.levels[1].storesTensor(Tensor::Outputs));
    EXPECT_FALSE(arch.levels[1].storesTensor(Tensor::Weights));
    EXPECT_TRUE(arch.levels[2].storesTensor(Tensor::Weights));
    EXPECT_FALSE(arch.levels[2].storesTensor(Tensor::Inputs));
    EXPECT_TRUE(arch.levels[3].storesTensor(Tensor::Inputs));
    // GlobalBuf holds inputs and outputs, not weights.
    EXPECT_TRUE(arch.levels[4].storesTensor(Tensor::Inputs));
    EXPECT_TRUE(arch.levels[4].storesTensor(Tensor::Outputs));
    EXPECT_FALSE(arch.levels[4].storesTensor(Tensor::Weights));
    // DRAM holds everything.
    for (Tensor t : kAllTensors)
        EXPECT_TRUE(arch.levels[5].storesTensor(t));
}

TEST(ArchSpec, HomeLevels)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    EXPECT_EQ(arch.homeLevel(Tensor::Outputs), 1); // AccBuf
    EXPECT_EQ(arch.homeLevel(Tensor::Weights), 2); // WBuf
    EXPECT_EQ(arch.homeLevel(Tensor::Inputs), 3);  // InputBuf
}

TEST(ArchSpec, SpatialGroups)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    ASSERT_EQ(arch.spatial_groups.size(), 2u);
    const SpatialGroup* macs = arch.groupOfLevel(0);
    ASSERT_NE(macs, nullptr);
    EXPECT_EQ(macs->fanout, 64);
    const SpatialGroup* pes = arch.groupOfLevel(4);
    ASSERT_NE(pes, nullptr);
    EXPECT_EQ(pes->fanout, 16);
    EXPECT_EQ(arch.groupOfLevel(5), nullptr); // no spatial at DRAM
    EXPECT_FALSE(arch.spatialAllowedAt(5));
    EXPECT_TRUE(arch.spatialAllowedAt(2));
}

TEST(ArchSpec, TensorBytes)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    EXPECT_DOUBLE_EQ(arch.tensorBytes(Tensor::Weights), 1.0);
    EXPECT_DOUBLE_EQ(arch.tensorBytes(Tensor::Inputs), 1.0);
    EXPECT_DOUBLE_EQ(arch.tensorBytes(Tensor::Outputs), 3.0);
}

TEST(ArchSpec, Simba8x8Variant)
{
    const ArchSpec base = ArchSpec::simbaBaseline();
    const ArchSpec big = ArchSpec::simba8x8();
    EXPECT_EQ(big.numPEs(), 64);
    EXPECT_DOUBLE_EQ(big.levels[4].bandwidth_bytes_per_cycle,
                     2.0 * base.levels[4].bandwidth_bytes_per_cycle);
    EXPECT_DOUBLE_EQ(big.levels[5].bandwidth_bytes_per_cycle,
                     2.0 * base.levels[5].bandwidth_bytes_per_cycle);
    const SpatialGroup* pes = big.groupOfLevel(4);
    ASSERT_NE(pes, nullptr);
    EXPECT_EQ(pes->fanout, 64);
}

TEST(ArchSpec, BigBufferVariant)
{
    const ArchSpec base = ArchSpec::simbaBaseline();
    const ArchSpec big = ArchSpec::simbaBigBuffers();
    EXPECT_EQ(big.levels[1].capacity_bytes, 2 * base.levels[1].capacity_bytes);
    EXPECT_EQ(big.levels[2].capacity_bytes, 2 * base.levels[2].capacity_bytes);
    EXPECT_EQ(big.levels[3].capacity_bytes, 2 * base.levels[3].capacity_bytes);
    EXPECT_EQ(big.levels[4].capacity_bytes, 8 * base.levels[4].capacity_bytes);
    EXPECT_EQ(big.numPEs(), base.numPEs());
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include <cmath>

#include "cosa/formulation.hpp"
#include "cosa/greedy.hpp"
#include "cosa/scheduler.hpp"
#include "model/analytical_model.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

CosaConfig
fastConfig()
{
    CosaConfig config;
    // A small deterministic work budget instead of a wall-clock cap:
    // results are then identical on loaded CI runners and fast hosts.
    config.mip.work_limit = 6000;
    config.mip.time_limit_sec = 20.0;
    return config;
}

TEST(Greedy, AlwaysValidAcrossWorkloads)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    for (const auto& suite : workloads::allSuites()) {
        for (const auto& layer : suite.layers) {
            const Mapping m = greedyMapping(layer, arch);
            const auto vr = validateMapping(m, layer, arch);
            EXPECT_TRUE(vr.valid) << layer.name << ": " << vr.reason;
        }
    }
}

TEST(Greedy, ValidOnArchVariants)
{
    const LayerSpec layer = workloads::fig8Layer();
    for (const ArchSpec& arch :
         {ArchSpec::simba8x8(), ArchSpec::simbaBigBuffers()}) {
        const Mapping m = greedyMapping(layer, arch);
        EXPECT_TRUE(validateMapping(m, layer, arch).valid) << arch.name;
    }
}

TEST(Greedy, UsesSpatialResources)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const Mapping m = greedyMapping(workloads::fig8Layer(), arch);
    // Both spatial groups should be heavily used on a big layer.
    for (const auto& group : arch.spatial_groups)
        EXPECT_GT(m.spatialProductInGroup(group), group.fanout / 4)
            << group.name;
}

TEST(CosaFormulation, ModelHasExpectedShape)
{
    const LayerSpec layer = workloads::fig8Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    CosaFormulation form(layer, arch, fastConfig());
    EXPECT_GT(form.model().numVars(), 100);
    EXPECT_GT(form.model().numConstrs(), 100);
    // 3_7_512_512_1: R,S have one factor each; P,Q one; C,K nine twos.
    EXPECT_EQ(form.pool().size(), 22);
}

TEST(CosaFormulation, RelaxationFeasibleForEveryResNetLayer)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    for (const auto& layer : workloads::resNet50().layers) {
        CosaFormulation form(layer, arch, fastConfig());
        const auto relax = form.model().optimizeRelaxation();
        EXPECT_EQ(relax.status, solver::Status::Optimal) << layer.name;
    }
}

TEST(CosaFormulation, EncodeRoundTripScoresGreedy)
{
    const LayerSpec layer = workloads::fig8Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    CosaFormulation form(layer, arch, fastConfig());
    const Mapping greedy = greedyMapping(layer, arch);
    const auto values = form.encodeMapping(greedy);
    // All objective terms must be finite and the composite consistent.
    const double util = form.utilObjective(values);
    const double comp = form.compObjective(values);
    const double traf = form.trafObjective(values);
    EXPECT_GT(util, 0.0);
    EXPECT_GT(comp, 0.0);
    EXPECT_GT(traf, 0.0);
    EXPECT_NEAR(form.totalObjective(values), -util + comp + traf, 1e-9);
}

TEST(CosaFormulation, ExtractedMappingRoundTripsThroughEncode)
{
    const LayerSpec layer = LayerSpec::fromLabel("3_14_128_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    CosaConfig config = fastConfig();
    CosaFormulation form(layer, arch, config);
    solver::MipResult mip;
    const auto mapping = form.solve(&mip);
    ASSERT_TRUE(mapping.has_value());
    const auto values = form.encodeMapping(*mapping);
    const Mapping again = form.extractMapping(values);
    for (Dim d : kAllDims)
        EXPECT_EQ(again.totalBound(d), mapping->totalBound(d));
}

TEST(CosaScheduler, FindsValidScheduleQuickly)
{
    const LayerSpec layer = LayerSpec::fromLabel("3_14_128_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    CosaScheduler scheduler(fastConfig());
    const SearchResult result = scheduler.schedule(layer, arch);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(result.eval.valid);
    EXPECT_EQ(result.stats.samples, 1);
    EXPECT_EQ(result.stats.valid_evaluated, 1);
    EXPECT_LT(result.stats.search_time_sec, 30.0);
    const auto vr = validateMapping(result.mapping, layer, arch);
    EXPECT_TRUE(vr.valid) << vr.reason;
}

TEST(CosaScheduler, NeverWorseThanGreedy)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    AnalyticalModel dummy_guard(workloads::fig8Layer(), arch);
    for (const char* label : {"3_7_512_512_1", "1_14_256_1024_1"}) {
        const LayerSpec layer = LayerSpec::fromLabel(label);
        CosaScheduler scheduler(fastConfig());
        const SearchResult result = scheduler.schedule(layer, arch);
        ASSERT_TRUE(result.found) << label;
        AnalyticalModel model(layer, arch);
        const Evaluation greedy_ev =
            model.evaluate(greedyMapping(layer, arch));
        EXPECT_LE(result.eval.cycles, greedy_ev.cycles * 1.0001) << label;
    }
}

TEST(CosaScheduler, WeightedSumModeAlsoSolves)
{
    const LayerSpec layer = LayerSpec::fromLabel("3_14_128_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    CosaConfig config = fastConfig();
    config.objective_mode = CosaObjectiveMode::WeightedSum;
    CosaScheduler scheduler(config);
    const SearchResult result = scheduler.schedule(layer, arch);
    EXPECT_TRUE(result.found);
}

TEST(CosaFormulation, ProbingOnOffEquivalence)
{
    // Probing is feasibility-preserving for the integer problem, so on
    // the CoSA formulation it must not change what an *optimal* solve
    // concludes — only (possibly) how fast it gets there. Both runs
    // get enough budget to prove optimality on small layers, and the
    // proven objective values must coincide; the extracted mappings
    // must both validate.
    const ArchSpec arch = ArchSpec::simbaBaseline();
    for (const char* label : {"1_4_8_8_1", "1_7_16_8_1", "1_7_32_16_1"}) {
        const LayerSpec layer = LayerSpec::fromLabel(label);
        CosaConfig plain_config;
        plain_config.mip.work_limit = 0; // uncapped: prove optimality
        plain_config.mip.time_limit_sec = 120.0;
        CosaConfig probing_config = plain_config;
        probing_config.mip.enable_probing = true;

        CosaFormulation plain(layer, arch, plain_config);
        CosaFormulation probed(layer, arch, probing_config);
        solver::MipResult plain_result, probed_result;
        const auto plain_mapping = plain.solve(&plain_result);
        const auto probed_mapping = probed.solve(&probed_result);

        ASSERT_EQ(plain_result.status, solver::Status::Optimal) << label;
        ASSERT_EQ(probed_result.status, solver::Status::Optimal) << label;
        EXPECT_NEAR(plain_result.objective, probed_result.objective,
                    1e-6 * (1.0 + std::abs(plain_result.objective)))
            << label;
        ASSERT_TRUE(plain_mapping.has_value()) << label;
        ASSERT_TRUE(probed_mapping.has_value()) << label;
        EXPECT_TRUE(validateMapping(*plain_mapping, layer, arch).valid);
        EXPECT_TRUE(validateMapping(*probed_mapping, layer, arch).valid);
    }
}

TEST(CosaScheduler, WorksOnArchVariants)
{
    // The Fig. 9 variants reuse the same formulation unchanged; the
    // GPU architecture path is exercised in test_gpu.cpp.
    const LayerSpec layer = LayerSpec::fromLabel("1_14_256_256_1");
    CosaScheduler scheduler(fastConfig());
    for (const ArchSpec& arch :
         {ArchSpec::simba8x8(), ArchSpec::simbaBigBuffers()}) {
        const SearchResult result = scheduler.schedule(layer, arch);
        EXPECT_TRUE(result.found) << arch.name;
        if (result.found) {
            EXPECT_TRUE(
                validateMapping(result.mapping, layer, arch).valid);
        }
    }
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "noc/mesh_noc.hpp"

namespace cosa {
namespace {

/**
 * Conservation property: every injected unicast packet is delivered
 * exactly once, for random traffic patterns and mesh sizes.
 */
class NocConservation : public ::testing::TestWithParam<int>
{
};

TEST_P(NocConservation, AllPacketsDeliveredExactlyOnce)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 5);
    NocConfig config;
    config.nx = 2 + static_cast<int>(rng.nextBelow(3));
    config.ny = 2 + static_cast<int>(rng.nextBelow(3));
    MeshNoc noc(config);
    const int nodes = noc.numNodes();

    std::vector<int> delivered(static_cast<std::size_t>(nodes), 0);
    int io_delivered = 0;
    noc.setDeliverCallback([&](int node, const NocPacket&) {
        ++delivered[static_cast<std::size_t>(node)];
    });
    noc.setIoDeliverCallback([&](const NocPacket&) { ++io_delivered; });

    const int to_send = 40;
    int sent = 0, sent_to_io = 0;
    std::vector<int> sent_to(static_cast<std::size_t>(nodes), 0);
    int spins = 0;
    while (sent < to_send && spins < 200'000) {
        if (rng.nextDouble() < 0.5 && noc.ioCanAccept()) {
            NocPacket p;
            const int dest =
                static_cast<int>(rng.nextBelow(
                    static_cast<std::uint64_t>(nodes)));
            p.dest_mask = 1ULL << dest;
            p.payload_flits = 1 + static_cast<int>(rng.nextBelow(16));
            noc.injectFromIo(p);
            ++sent_to[static_cast<std::size_t>(dest)];
            ++sent;
        } else {
            const int src = static_cast<int>(
                rng.nextBelow(static_cast<std::uint64_t>(nodes)));
            if (noc.nodeCanAccept(src)) {
                NocPacket p;
                p.to_io = true;
                p.payload_flits =
                    1 + static_cast<int>(rng.nextBelow(16));
                noc.injectFromNode(src, p);
                ++sent_to_io;
                ++sent;
            }
        }
        noc.tick();
        ++spins;
    }
    for (int i = 0; i < 300'000 && !noc.idle(); ++i)
        noc.tick();
    ASSERT_TRUE(noc.idle());
    for (int n = 0; n < nodes; ++n) {
        EXPECT_EQ(delivered[static_cast<std::size_t>(n)],
                  sent_to[static_cast<std::size_t>(n)])
            << "node " << n;
    }
    EXPECT_EQ(io_delivered, sent_to_io);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NocConservation, ::testing::Range(0, 12));

TEST(NocProperties, BiggerPacketsOccupyLinksLonger)
{
    auto latency_of = [&](int flits) {
        MeshNoc noc;
        std::uint64_t done_at = 0;
        noc.setDeliverCallback(
            [&](int, const NocPacket&) { done_at = noc.now(); });
        NocPacket p;
        p.dest_mask = 1ULL << 15;
        p.payload_flits = flits;
        noc.injectFromIo(p);
        for (int i = 0; i < 10'000 && done_at == 0; ++i)
            noc.tick();
        return done_at;
    };
    EXPECT_LT(latency_of(2), latency_of(32));
}

TEST(NocProperties, CongestionDelaysDelivery)
{
    // Many packets to one hotspot take longer per packet than spread
    // traffic of the same total volume.
    auto run = [&](bool hotspot) {
        MeshNoc noc;
        int delivered = 0;
        noc.setDeliverCallback(
            [&](int, const NocPacket&) { ++delivered; });
        int sent = 0;
        std::uint64_t cycles = 0;
        while (delivered < 16 && cycles < 100'000) {
            if (sent < 16 && noc.ioCanAccept()) {
                NocPacket p;
                p.dest_mask = hotspot ? (1ULL << 15)
                                      : (1ULL << (sent % 16));
                p.payload_flits = 16;
                noc.injectFromIo(p);
                ++sent;
            }
            noc.tick();
            ++cycles;
        }
        return cycles;
    };
    EXPECT_GT(run(true), 0u);
    EXPECT_LE(run(false), run(true));
}

} // namespace
} // namespace cosa

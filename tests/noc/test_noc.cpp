#include <gtest/gtest.h>

#include "cosa/greedy.hpp"
#include "noc/mesh_noc.hpp"
#include "noc/schedule_sim.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

TEST(MeshNoc, DeliversUnicastPacket)
{
    MeshNoc noc;
    int delivered_at = -1;
    noc.setDeliverCallback([&](int node, const NocPacket&) {
        delivered_at = node;
    });
    NocPacket p;
    p.dest_mask = 1ULL << 15; // far corner of the 4x4 mesh
    p.payload_flits = 4;
    noc.injectFromIo(p);
    for (int i = 0; i < 1000 && delivered_at < 0; ++i)
        noc.tick();
    EXPECT_EQ(delivered_at, 15);
    EXPECT_TRUE(noc.idle());
    EXPECT_GT(noc.stats().flit_hops, 0);
}

TEST(MeshNoc, MulticastReachesAllDestinations)
{
    MeshNoc noc;
    std::uint64_t delivered_mask = 0;
    noc.setDeliverCallback([&](int node, const NocPacket&) {
        delivered_mask |= 1ULL << node;
    });
    NocPacket p;
    p.dest_mask = 0b1000'0100'0010'0001; // one PE per row
    p.payload_flits = 8;
    noc.injectFromIo(p);
    for (int i = 0; i < 2000 && delivered_mask != p.dest_mask; ++i)
        noc.tick();
    EXPECT_EQ(delivered_mask, p.dest_mask);
    EXPECT_GT(noc.stats().multicast_forks, 0);
}

TEST(MeshNoc, MulticastCheaperThanUnicasts)
{
    // Hop count for one multicast must undercut equivalent unicasts.
    auto run = [&](bool multicast) {
        MeshNoc noc;
        int deliveries = 0;
        noc.setDeliverCallback(
            [&](int, const NocPacket&) { ++deliveries; });
        if (multicast) {
            NocPacket p;
            p.dest_mask = 0xFFFF;
            p.payload_flits = 16;
            noc.injectFromIo(p);
        } else {
            for (int d = 0; d < 16; ++d) {
                for (int spin = 0; spin < 10'000 && !noc.ioCanAccept();
                     ++spin)
                    noc.tick();
                NocPacket p;
                p.dest_mask = 1ULL << d;
                p.payload_flits = 16;
                noc.injectFromIo(p);
            }
        }
        for (int i = 0; i < 20'000 && deliveries < 16; ++i)
            noc.tick();
        EXPECT_EQ(deliveries, 16);
        return noc.stats().flit_hops;
    };
    EXPECT_LT(run(true), run(false));
}

TEST(MeshNoc, PacketsToIoArrive)
{
    MeshNoc noc;
    int io_arrivals = 0;
    noc.setIoDeliverCallback([&](const NocPacket&) { ++io_arrivals; });
    NocPacket p;
    p.to_io = true;
    p.payload_flits = 4;
    noc.injectFromNode(10, p);
    for (int i = 0; i < 1000 && io_arrivals == 0; ++i)
        noc.tick();
    EXPECT_EQ(io_arrivals, 1);
}

TEST(MeshNoc, FlowControlBlocksWhenFull)
{
    NocConfig config;
    config.input_buffer_packets = 1;
    MeshNoc noc(config);
    NocPacket p;
    p.dest_mask = 1ULL << 3;
    p.payload_flits = 32;
    ASSERT_TRUE(noc.ioCanAccept());
    noc.injectFromIo(p);
    EXPECT_FALSE(noc.ioCanAccept());
}

TEST(ScheduleSim, GreedyScheduleSimulates)
{
    const LayerSpec layer = LayerSpec::fromLabel("3_14_128_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const Mapping m = greedyMapping(layer, arch);
    ScheduleSimulator sim(layer, arch);
    const SimResult r = sim.simulate(m);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.cycles, 0);
    EXPECT_GT(r.noc.packets_injected, 0);
    EXPECT_GT(r.pe_busy_fraction, 0.1);
    // Latency can never undercut the pure compute time.
    EXPECT_GE(r.cycles,
              r.outer_iterations * r.compute_cycles_per_iter);
}

TEST(ScheduleSim, RejectsInvalidMapping)
{
    const LayerSpec layer = LayerSpec::fromLabel("3_14_128_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    Mapping empty;
    empty.levels.resize(6);
    ScheduleSimulator sim(layer, arch);
    const SimResult r = sim.simulate(empty);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST(ScheduleSim, CommunicationHeavyScheduleIsSlower)
{
    // Same layer: a schedule with weight refetch per output tile vs a
    // weight-stationary one (K outermost at DRAM).
    const LayerSpec layer = LayerSpec::fromLabel("3_14_128_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    auto make = [&](bool weights_stationary) {
        Mapping m;
        m.levels.resize(6);
        m.levels[1] = {{Dim::R, 3, false}, {Dim::S, 3, false}};
        m.levels[2] = {{Dim::C, 32, false}};
        m.levels[3] = {{Dim::C, 4, true}};
        m.levels[4] = {{Dim::K, 16, true}};
        if (weights_stationary) {
            m.levels[5] = {{Dim::K, 16, false}, {Dim::P, 14, false},
                           {Dim::Q, 14, false}};
        } else {
            m.levels[5] = {{Dim::P, 14, false}, {Dim::Q, 14, false},
                           {Dim::K, 16, false}};
        }
        return m;
    };
    ScheduleSimulator sim(layer, arch);
    const SimResult stationary = sim.simulate(make(true));
    const SimResult thrashing = sim.simulate(make(false));
    ASSERT_TRUE(stationary.ok) << stationary.error;
    ASSERT_TRUE(thrashing.ok) << thrashing.error;
    EXPECT_LT(stationary.cycles, thrashing.cycles);
}

TEST(ScheduleSim, HugeOuterNestIsExtrapolatedNotHung)
{
    // An all-at-DRAM schedule has an enormous outer nest; simulation
    // must finish quickly via sampling extrapolation.
    const LayerSpec layer = LayerSpec::fromLabel("3_14_256_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    Mapping m;
    m.levels.resize(6);
    for (Dim d : kAllDims) {
        if (layer.bound(d) > 1)
            m.levels[5].push_back({d, layer.bound(d), false});
    }
    ScheduleSimulator sim(layer, arch);
    const SimResult r = sim.simulate(m);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.outer_iterations, 1'000'000);
    EXPECT_GT(r.cycles, r.outer_iterations); // at least 1 cycle/iter
}

} // namespace
} // namespace cosa

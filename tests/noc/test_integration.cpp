#include <gtest/gtest.h>

#include "cosa/scheduler.hpp"
#include "mapper/random_mapper.hpp"
#include "noc/schedule_sim.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

/**
 * End-to-end integration: CoSA's schedule for a real layer must run on
 * the cycle-driven platform and respect the compute lower bound.
 */
TEST(Integration, CosaScheduleSimulatesOnNoc)
{
    const LayerSpec layer = LayerSpec::fromLabel("3_14_128_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    CosaConfig config;
    config.mip.time_limit_sec = 2.0;
    CosaScheduler scheduler(config);
    const SearchResult result = scheduler.schedule(layer, arch);
    ASSERT_TRUE(result.found);

    ScheduleSimulator sim(layer, arch);
    const SimResult sr = sim.simulate(result.mapping);
    ASSERT_TRUE(sr.ok) << sr.error;
    EXPECT_GE(sr.cycles,
              sr.outer_iterations * sr.compute_cycles_per_iter);
    // The simulated latency should be within sanity range of the
    // analytical estimate. The simulator adds real communication
    // latency but does not charge intra-PE SRAM bandwidth, which the
    // analytical model bounds pessimistically, so it may land well
    // below the estimate.
    EXPECT_GT(sr.cycles, 0.02 * result.eval.cycles);
    EXPECT_LT(static_cast<double>(sr.cycles), 100.0 * result.eval.cycles);
}

/**
 * The paper's Fig. 10 observation in miniature: on a memory-bound FC
 * layer the schedulers' simulated latencies cluster, because DRAM
 * bandwidth dominates regardless of the schedule.
 */
TEST(Integration, FcLayerSchedulesClusterOnNocSim)
{
    const LayerSpec layer = LayerSpec::fromLabel("1_1_2048_1000_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();

    RandomMapper random;
    CosaConfig config;
    config.mip.time_limit_sec = 2.0;
    CosaScheduler cosa_sched(config);
    const SearchResult r_rnd = random.schedule(layer, arch);
    const SearchResult r_cosa = cosa_sched.schedule(layer, arch);
    ASSERT_TRUE(r_rnd.found && r_cosa.found);

    ScheduleSimulator sim(layer, arch);
    const SimResult s_rnd = sim.simulate(r_rnd.mapping);
    const SimResult s_cosa = sim.simulate(r_cosa.mapping);
    ASSERT_TRUE(s_rnd.ok) << s_rnd.error;
    ASSERT_TRUE(s_cosa.ok) << s_cosa.error;
    // Same ballpark (paper: "no significant difference between the
    // performance of FC layers"). The band is a sanity range, not a
    // paper number: the sparse solver core with presolve finds an FC
    // schedule ~11x better than Random's on the simulator, so the
    // ceiling sits above that deterministic ratio.
    const double ratio = static_cast<double>(s_rnd.cycles) /
                         static_cast<double>(s_cosa.cycles);
    EXPECT_GT(ratio, 0.1);
    EXPECT_LT(ratio, 20.0);
}

/**
 * Architecture scaling: the 8x8 variant must never be slower than the
 * 4x4 baseline for the same CoSA-scheduled layer (more PEs + more
 * bandwidth).
 */
TEST(Integration, BiggerArrayIsNotSlower)
{
    const LayerSpec layer = LayerSpec::fromLabel("3_14_256_256_1");
    CosaConfig config;
    config.mip.time_limit_sec = 2.0;
    const ArchSpec small = ArchSpec::simbaBaseline();
    const ArchSpec big = ArchSpec::simba8x8();
    CosaScheduler scheduler(config);
    const SearchResult r_small = scheduler.schedule(layer, small);
    const SearchResult r_big = scheduler.schedule(layer, big);
    ASSERT_TRUE(r_small.found && r_big.found);
    EXPECT_LE(r_big.eval.cycles, r_small.eval.cycles * 1.1);
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include "mapping/mapping.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

/** A small hand-built valid mapping for the Listing-1 layer on Simba. */
Mapping
listing1Mapping()
{
    // Layer: R=S=3, P=Q=28, C=8, K=4, N=3 (paper Listing 1).
    Mapping m;
    m.levels.resize(6);
    // Register level: q0 = 2.
    m.levels[0] = {{Dim::Q, 2, false}};
    // AccBuf: s0 = 3, p0 = 2, spatial c0 = 8.
    m.levels[1] = {{Dim::S, 3, false}, {Dim::P, 2, false}, {Dim::C, 8, true}};
    // WBuf: c1 = 1 (merged into AccBuf spatial here), p1 = 2.
    m.levels[2] = {{Dim::P, 2, false}};
    // InputBuf: spatial k0 = 2.
    m.levels[3] = {{Dim::K, 2, true}};
    // GlobalBuf: p2 = 7, q1 = 7, n0 = 3, spatial r0 = 3, spatial k1 = 2.
    m.levels[4] = {{Dim::P, 7, false}, {Dim::Q, 7, false},
                   {Dim::N, 3, false}, {Dim::R, 3, true}, {Dim::K, 2, true}};
    // DRAM: q2 = 2.
    m.levels[5] = {{Dim::Q, 2, false}};
    return m;
}

TEST(Mapping, TotalBoundsCoverLayer)
{
    const Mapping m = listing1Mapping();
    const LayerSpec layer = workloads::listing1Layer();
    for (Dim d : kAllDims)
        EXPECT_EQ(m.totalBound(d), layer.bound(d)) << dimName(d);
}

TEST(Mapping, TemporalAndSpatialProducts)
{
    const Mapping m = listing1Mapping();
    // Spatial: c0=8 (level 1), k0=2 (level 3), r0=3, k1=2 (level 4).
    EXPECT_EQ(m.spatialProductAt(1), 8);
    EXPECT_EQ(m.spatialProductAt(3), 2);
    EXPECT_EQ(m.spatialProductAt(4), 6);
    const LayerSpec layer = workloads::listing1Layer();
    const std::int64_t all = layer.macs();
    EXPECT_EQ(m.temporalProduct() * 8 * 2 * 6, all);
}

TEST(Mapping, InstancesOfLevel)
{
    const Mapping m = listing1Mapping();
    // Instances of the register level: spatial above level 0 = 8*2*6.
    EXPECT_EQ(m.instancesOfLevel(0), 96);
    EXPECT_EQ(m.instancesOfLevel(3), 6);  // GB-level spatial only
    EXPECT_EQ(m.instancesOfLevel(4), 1);
    EXPECT_EQ(m.instancesOfLevel(5), 1);
}

TEST(Mapping, TileBounds)
{
    const Mapping m = listing1Mapping();
    EXPECT_EQ(m.tileBound(Dim::Q, 0), 2);
    EXPECT_EQ(m.tileBound(Dim::Q, 4), 14); // 2 * 7
    EXPECT_EQ(m.tileBound(Dim::Q, 5), 28);
    EXPECT_EQ(m.tileBound(Dim::C, 0), 1);
    EXPECT_EQ(m.tileBound(Dim::C, 1), 8);
    EXPECT_EQ(m.tileBound(Dim::K, 3), 2);
    EXPECT_EQ(m.tileBound(Dim::K, 4), 4);
}

TEST(Mapping, ValidatesOnSimba)
{
    const Mapping m = listing1Mapping();
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const auto vr = validateMapping(m, layer, arch);
    EXPECT_TRUE(vr.valid) << vr.reason;
}

TEST(Mapping, DetectsUnderCoverage)
{
    Mapping m = listing1Mapping();
    m.levels[5].clear(); // drop q2=2: Q only covered to 14
    const auto vr = validateMapping(m, workloads::listing1Layer(),
                                    ArchSpec::simbaBaseline());
    EXPECT_FALSE(vr.valid);
    EXPECT_NE(vr.reason.find("Q"), std::string::npos);
}

TEST(Mapping, DetectsSpatialOverSubscription)
{
    Mapping m = listing1Mapping();
    // Blow past the 16-PE fanout at the GlobalBuf level.
    m.levels[4].push_back({Dim::C, 8, true});
    m.levels[1][2].spatial = false; // keep C product correct overall
    m.levels[1][2].bound = 1;
    const auto vr = validateMapping(m, workloads::listing1Layer(),
                                    ArchSpec::simbaBaseline());
    EXPECT_FALSE(vr.valid);
    EXPECT_NE(vr.reason.find("PEs"), std::string::npos);
}

TEST(Mapping, DetectsSpatialAtDram)
{
    Mapping m = listing1Mapping();
    m.levels[5][0].spatial = true;
    const auto vr = validateMapping(m, workloads::listing1Layer(),
                                    ArchSpec::simbaBaseline());
    EXPECT_FALSE(vr.valid);
}

TEST(Mapping, DetectsBufferOverflow)
{
    // Put the entire K and C at the register level: 64B registers
    // cannot hold the resulting tiles.
    const LayerSpec layer = LayerSpec::fromLabel("3_14_256_512_1");
    Mapping m;
    m.levels.resize(6);
    m.levels[0] = {{Dim::C, 256, false}, {Dim::K, 512, false},
                   {Dim::R, 3, false}, {Dim::S, 3, false}};
    m.levels[5] = {{Dim::P, 14, false}, {Dim::Q, 14, false}};
    const auto vr = validateMapping(m, layer, ArchSpec::simbaBaseline());
    EXPECT_FALSE(vr.valid);
    EXPECT_NE(vr.reason.find("Register"), std::string::npos);
}

TEST(Mapping, PruneUnitLoops)
{
    Mapping m = listing1Mapping();
    m.levels[2].push_back({Dim::C, 1, false});
    const int before = m.numLoops();
    m.pruneUnitLoops();
    EXPECT_EQ(m.numLoops(), before - 1);
}

TEST(Mapping, ToStringMentionsLevelsAndSpatial)
{
    const Mapping m = listing1Mapping();
    const std::string s = m.toString(ArchSpec::simbaBaseline());
    EXPECT_NE(s.find("GlobalBuf"), std::string::npos);
    EXPECT_NE(s.find("spatial_for"), std::string::npos);
    EXPECT_NE(s.find("DRAM"), std::string::npos);
}

TEST(TileAnalysis, InputHaloTile)
{
    const Mapping m = listing1Mapping();
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    TileAnalysis tiles(m, layer, arch);
    // At the InputBuf level (3): P tile = 2*2=4, Q tile = 2, R=S tile=3
    // (R only appears spatially at level 4 -> tile R at 3 is 1!).
    // Actually R appears only at level 4, so tileBound(R,3)=1.
    EXPECT_EQ(m.tileBound(Dim::R, 3), 1);
    const std::int64_t w = (m.tileBound(Dim::P, 3) - 1) * 1 + 1;
    const std::int64_t h = (m.tileBound(Dim::Q, 3) - 1) * 1 +
                           m.tileBound(Dim::S, 3);
    EXPECT_EQ(tiles.tileElements(Tensor::Inputs, 3),
              w * h * m.tileBound(Dim::C, 3) * m.tileBound(Dim::N, 3));
}

TEST(TileAnalysis, OutputBytesUsePartialSumPrecision)
{
    const Mapping m = listing1Mapping();
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    TileAnalysis tiles(m, layer, arch);
    EXPECT_DOUBLE_EQ(
        tiles.tileBytes(Tensor::Outputs, 1),
        static_cast<double>(tiles.tileElements(Tensor::Outputs, 1)) * 3.0);
}

} // namespace
} // namespace cosa

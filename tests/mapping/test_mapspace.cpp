#include <gtest/gtest.h>

#include <set>

#include "mapping/mapspace.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

TEST(Mapspace, BuildMappingCoversAllDims)
{
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    FactorPool pool(layer);
    FactorAssignment a;
    a.level.assign(static_cast<std::size_t>(pool.size()), 5); // all at DRAM
    a.spatial.assign(static_cast<std::size_t>(pool.size()), false);
    const Mapping m = buildMapping(pool, a, arch);
    for (Dim d : kAllDims)
        EXPECT_EQ(m.totalBound(d), layer.bound(d));
    // All loops must be at DRAM.
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(m.levels[static_cast<std::size_t>(i)].empty());
}

TEST(Mapspace, BuildMappingMergesSameDimFactors)
{
    const LayerSpec layer = LayerSpec::fromLabel("1_1_16_1_1"); // C = 2^4
    const ArchSpec arch = ArchSpec::simbaBaseline();
    FactorPool pool(layer);
    ASSERT_EQ(pool.size(), 4);
    FactorAssignment a;
    a.level.assign(4, 2);
    a.spatial.assign(4, false);
    const Mapping m = buildMapping(pool, a, arch);
    ASSERT_EQ(m.levels[2].size(), 1u); // merged into one C loop
    EXPECT_EQ(m.levels[2][0].bound, 16);
}

TEST(Mapspace, SpatialAndTemporalFactorsStaySeparate)
{
    const LayerSpec layer = LayerSpec::fromLabel("1_1_16_1_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    FactorPool pool(layer);
    FactorAssignment a;
    a.level.assign(4, 1);
    a.spatial = {true, true, false, false};
    const Mapping m = buildMapping(pool, a, arch);
    ASSERT_EQ(m.levels[1].size(), 2u);
    EXPECT_TRUE(m.levels[1][0].spatial); // spatial loop sorted first
    EXPECT_EQ(m.levels[1][0].bound, 4);
    EXPECT_FALSE(m.levels[1][1].spatial);
    EXPECT_EQ(m.levels[1][1].bound, 4);
}

TEST(Mapspace, SampleAssignmentIsWellFormed)
{
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    FactorPool pool(layer);
    Rng rng(17);
    for (int trial = 0; trial < 100; ++trial) {
        const FactorAssignment a = sampleAssignment(pool, arch, rng);
        ASSERT_EQ(a.level.size(), static_cast<std::size_t>(pool.size()));
        for (int f = 0; f < pool.size(); ++f) {
            EXPECT_GE(a.level[f], 0);
            EXPECT_LT(a.level[f], arch.numLevels());
            if (a.spatial[f]) {
                EXPECT_TRUE(arch.spatialAllowedAt(a.level[f]));
            }
        }
        const Mapping m = buildMapping(pool, a, arch);
        for (Dim d : kAllDims)
            EXPECT_EQ(m.totalBound(d), pool.paddedBound(d));
    }
}

TEST(Mapspace, SamplingExploresDifferentAssignments)
{
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    FactorPool pool(layer);
    Rng rng(23);
    std::set<std::vector<int>> seen;
    for (int trial = 0; trial < 50; ++trial)
        seen.insert(sampleAssignment(pool, arch, rng).level);
    EXPECT_GT(seen.size(), 40u);
}

TEST(Mapspace, PermuteLevelEnumeratesOrders)
{
    Mapping m;
    m.levels.resize(6);
    m.levels[4] = {{Dim::P, 2, false}, {Dim::C, 3, false},
                   {Dim::K, 5, false}};
    const auto perms = permuteLevel(m, 4, 100);
    EXPECT_EQ(perms.size(), 6u); // 3! orders
    std::set<std::string> distinct;
    for (const auto& pm : perms) {
        std::string sig;
        for (const Loop& l : pm.levels[4])
            sig += dimName(l.dim);
        distinct.insert(sig);
    }
    EXPECT_EQ(distinct.size(), 6u);
}

TEST(Mapspace, PermuteLevelRespectsCap)
{
    Mapping m;
    m.levels.resize(6);
    m.levels[4] = {{Dim::P, 2, false}, {Dim::C, 3, false},
                   {Dim::K, 5, false}, {Dim::Q, 7, false}};
    const auto perms = permuteLevel(m, 4, 10);
    EXPECT_EQ(perms.size(), 10u);
}

TEST(Mapspace, ShuffleKeepsLoopMultiset)
{
    Mapping m;
    m.levels.resize(6);
    m.levels[4] = {{Dim::P, 2, false}, {Dim::C, 3, false},
                   {Dim::K, 5, false}};
    Mapping shuffled = m;
    Rng rng(3);
    shuffleLoopOrders(shuffled, rng);
    EXPECT_EQ(shuffled.totalBound(Dim::P), 2);
    EXPECT_EQ(shuffled.totalBound(Dim::C), 3);
    EXPECT_EQ(shuffled.totalBound(Dim::K), 5);
    EXPECT_EQ(shuffled.levels[4].size(), 3u);
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include "dram/dram_model.hpp"

namespace cosa {
namespace {

TEST(Dram, CompletesSingleRead)
{
    DramModel dram;
    int completed = 0;
    dram.setCallback([&](const DramRequest&) { ++completed; });
    ASSERT_TRUE(dram.enqueue({0, false, 7}));
    for (int i = 0; i < 100 && completed == 0; ++i)
        dram.tick();
    EXPECT_EQ(completed, 1);
    EXPECT_EQ(dram.totalReads(), 1);
    EXPECT_EQ(dram.totalWrites(), 0);
}

TEST(Dram, RowHitsFasterThanMisses)
{
    DramConfig config;
    DramModel hit_dram(config), miss_dram(config);
    int done = 0;
    auto cb = [&](const DramRequest&) { ++done; };
    hit_dram.setCallback(cb);
    miss_dram.setCallback(cb);

    // Same-row stream vs alternating far rows.
    for (int i = 0; i < 8; ++i)
        hit_dram.enqueue(
            {static_cast<std::uint64_t>(i) * config.burst_bytes, false, 0});
    for (int i = 0; i < 8; ++i)
        miss_dram.enqueue({static_cast<std::uint64_t>(i) *
                               config.row_bytes *
                               static_cast<std::uint64_t>(
                                   config.num_banks) * 2,
                           false, 0});
    int hit_cycles = 0, miss_cycles = 0;
    done = 0;
    while (done < 8 && hit_cycles < 10'000) {
        hit_dram.tick();
        ++hit_cycles;
    }
    done = 0;
    while (done < 8 && miss_cycles < 10'000) {
        miss_dram.tick();
        ++miss_cycles;
    }
    EXPECT_LT(hit_cycles, miss_cycles);
    EXPECT_GT(hit_dram.rowHits(), 0);
    EXPECT_GT(miss_dram.rowMisses(), miss_dram.rowHits());
}

TEST(Dram, QueueDepthEnforced)
{
    DramConfig config;
    config.queue_depth = 4;
    DramModel dram(config);
    int accepted = 0;
    for (int i = 0; i < 10; ++i)
        accepted += dram.enqueue({0, false, 0}); // same bank
    EXPECT_EQ(accepted, 4);
    EXPECT_FALSE(dram.canAccept(0));
}

TEST(Dram, BankParallelismImprovesThroughput)
{
    DramConfig config;
    DramModel one_bank(config), many_banks(config);
    int done = 0;
    auto cb = [&](const DramRequest&) { ++done; };
    one_bank.setCallback(cb);
    many_banks.setCallback(cb);
    const int n = 16;
    for (int i = 0; i < n; ++i) {
        // Same bank (same row group) vs striped across banks.
        one_bank.enqueue({static_cast<std::uint64_t>(i) *
                              config.row_bytes *
                              static_cast<std::uint64_t>(config.num_banks),
                          false, 0});
        many_banks.enqueue(
            {static_cast<std::uint64_t>(i) * config.row_bytes, false, 0});
    }
    int cycles_one = 0, cycles_many = 0;
    done = 0;
    while (done < n && cycles_one < 100'000) {
        one_bank.tick();
        ++cycles_one;
    }
    done = 0;
    while (done < n && cycles_many < 100'000) {
        many_banks.tick();
        ++cycles_many;
    }
    EXPECT_LE(cycles_many, cycles_one);
}

TEST(Dram, WritesCounted)
{
    DramModel dram;
    int done = 0;
    dram.setCallback([&](const DramRequest&) { ++done; });
    dram.enqueue({0, true, 0});
    dram.enqueue({64, true, 0});
    for (int i = 0; i < 200 && done < 2; ++i)
        dram.tick();
    EXPECT_EQ(dram.totalWrites(), 2);
}

TEST(Dram, PendingTracksQueue)
{
    DramModel dram;
    EXPECT_EQ(dram.pending(), 0);
    dram.enqueue({0, false, 0});
    dram.enqueue({4096, false, 0});
    EXPECT_EQ(dram.pending(), 2);
}

} // namespace
} // namespace cosa

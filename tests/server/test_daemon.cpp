#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/daemon.hpp"
#include "server/wire.hpp"

namespace cosa {
namespace server {
namespace {

/** A cheap deterministic request: Random scheduler, fixed seed. */
std::string
cheapBody(const std::string& tag = "t", int layers = 2, int samples = 30)
{
    std::string body =
        R"({"workloads":[{"name":"net","layers":[)";
    for (int i = 0; i < layers; ++i) {
        if (i)
            body += ",";
        body += "\"1_7_32_" + std::to_string(16 + i) + "_1\"";
    }
    body += R"(]}],"arch":"simba","scheduler":"random",)";
    body += "\"random\":{\"max_samples\":" + std::to_string(samples) +
            ",\"target_valid\":" + std::to_string(samples) +
            ",\"seed\":5},";
    body += "\"tag\":\"" + tag + "\"}";
    return body;
}

DaemonConfig
smallConfig()
{
    DaemonConfig config;
    config.port = 0;
    config.num_handler_threads = 2;
    config.service.num_threads = 2;
    return config;
}

std::uint64_t
submittedId(const StatusOr<WireResponse>& response)
{
    EXPECT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response.value().status, 202) << response.value().body;
    StatusOr<json::Value> body =
        json::Value::parse(response.value().body);
    EXPECT_TRUE(body.ok());
    return static_cast<std::uint64_t>(body.value().getInt("id", 0));
}

/** Poll GET /v1/jobs/{id} until state == done; returns the last body. */
std::string
waitDone(Client& client, std::uint64_t id)
{
    for (int i = 0; i < 600; ++i) {
        StatusOr<WireResponse> response = client.jobStatus(id);
        EXPECT_TRUE(response.ok()) << response.status().message();
        if (!response.ok())
            return "";
        EXPECT_EQ(response.value().status, 200) << response.value().body;
        StatusOr<json::Value> body =
            json::Value::parse(response.value().body);
        EXPECT_TRUE(body.ok());
        if (body.ok() &&
            body.value().getString("state", "") == "done")
            return response.value().body;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "job " << id << " never finished";
    return "";
}

/** The canonical bytes the same body produces in-process (the CI
 *  `cosactl local` reference, inlined). */
std::string
localReference(const std::string& body_text)
{
    StatusOr<json::Value> body = json::Value::parse(body_text);
    EXPECT_TRUE(body.ok());
    StatusOr<ScheduleRequest> decoded =
        requestFromJson(body.value(), "");
    EXPECT_TRUE(decoded.ok()) << decoded.status().message();
    SchedulerService service{ServiceConfig{}};
    SubmitResult submitted = service.submit(std::move(decoded).value());
    EXPECT_TRUE(submitted.accepted());
    return resultsToJson(submitted.takeJob().wait()).dump();
}

/** "results" member bytes of a done status body. */
std::string
resultBytes(const std::string& status_body)
{
    StatusOr<json::Value> body = json::Value::parse(status_body);
    EXPECT_TRUE(body.ok());
    const json::Value* results = body.value().find("results");
    EXPECT_NE(results, nullptr);
    return results ? results->dump() : "";
}

/** Raw one-shot exchange for wire-level tests the Client cannot
 *  express (garbage, pipelining). Returns everything the daemon sent
 *  until it closed the connection. */
std::string
rawExchange(int port, const std::string& bytes)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    std::string out;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
            break;
        out.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

TEST(Daemon, HealthzRoutesAndErrors)
{
    Daemon daemon{smallConfig()};
    ASSERT_TRUE(daemon.start().ok());
    Client client("127.0.0.1", daemon.port());

    StatusOr<WireResponse> health = client.healthz();
    ASSERT_TRUE(health.ok()) << health.status().message();
    EXPECT_EQ(health.value().status, 200);
    EXPECT_EQ(health.value().body, "{\"ok\":true}");

    StatusOr<WireResponse> missing = client.request("GET", "/nope");
    ASSERT_TRUE(missing.ok());
    EXPECT_EQ(missing.value().status, 404);
    EXPECT_NE(missing.value().body.find("not_found"), std::string::npos);

    StatusOr<WireResponse> wrong_method =
        client.request("DELETE", "/healthz");
    ASSERT_TRUE(wrong_method.ok());
    EXPECT_EQ(wrong_method.value().status, 405);

    StatusOr<WireResponse> unknown_job = client.jobStatus(999);
    ASSERT_TRUE(unknown_job.ok());
    EXPECT_EQ(unknown_job.value().status, 404);
}

TEST(Daemon, SubmitRejectsBadBodiesWithStructuredErrors)
{
    Daemon daemon{smallConfig()};
    ASSERT_TRUE(daemon.start().ok());
    Client client("127.0.0.1", daemon.port());

    StatusOr<WireResponse> bad_json = client.submit("{not json");
    ASSERT_TRUE(bad_json.ok());
    EXPECT_EQ(bad_json.value().status, 400);
    EXPECT_NE(bad_json.value().body.find("invalid_input"),
              std::string::npos);

    StatusOr<WireResponse> bad_key = client.submit(
        R"({"workloads":["alexnet"],"arch":"simba","bogus":1})");
    ASSERT_TRUE(bad_key.ok());
    EXPECT_EQ(bad_key.value().status, 400);
    EXPECT_NE(bad_key.value().body.find("bogus"), std::string::npos);
}

TEST(Daemon, WireResultsAreByteIdenticalToInProcess)
{
    Daemon daemon{smallConfig()};
    ASSERT_TRUE(daemon.start().ok());
    Client client("127.0.0.1", daemon.port());

    const std::string body = cheapBody("byte-identity");
    const std::uint64_t id = submittedId(client.submit(body));
    const std::string status_body = waitDone(client, id);
    const std::string wire = resultBytes(status_body);
    EXPECT_FALSE(wire.empty());
    EXPECT_EQ(wire, localReference(body));
}

TEST(Daemon, MixedTenantMixedTierResultsStayByteIdentical)
{
    // The acceptance contract: the schedule bytes must not depend on
    // who else is on the daemon or at what priority.
    DaemonConfig config = smallConfig();
    config.tenants = {
        TenantSpec{"alice", "ka", 0.0, 0.0, 0},
        TenantSpec{"bob", "kb", 0.0, 0.0, 0},
    };
    Daemon daemon{std::move(config)};
    ASSERT_TRUE(daemon.start().ok());
    Client alice("127.0.0.1", daemon.port(), "ka");
    Client bob("127.0.0.1", daemon.port(), "kb");

    // Same problem at different priorities from different tenants.
    std::string alice_body = cheapBody("mix");
    alice_body.insert(alice_body.size() - 1,
                      ",\"priority\":\"interactive\"");
    std::string bob_body = cheapBody("mix");
    bob_body.insert(bob_body.size() - 1, ",\"priority\":\"batch\"");

    const std::uint64_t a1 = submittedId(alice.submit(alice_body));
    const std::uint64_t b1 = submittedId(bob.submit(bob_body));
    const std::uint64_t a2 = submittedId(alice.submit(alice_body));

    const std::string reference = localReference(cheapBody("mix"));
    EXPECT_EQ(resultBytes(waitDone(alice, a1)), reference);
    EXPECT_EQ(resultBytes(waitDone(bob, b1)), reference);
    EXPECT_EQ(resultBytes(waitDone(alice, a2)), reference);
}

TEST(Daemon, EventStreamReplaysProgressAndTerminates)
{
    Daemon daemon{smallConfig()};
    ASSERT_TRUE(daemon.start().ok());
    Client client("127.0.0.1", daemon.port());

    const std::uint64_t id =
        submittedId(client.submit(cheapBody("events", 3)));
    waitDone(client, id);
    // Subscribing after completion still replays the full sequence —
    // ScheduleJob::onProgress replay plus the terminal line.
    std::vector<std::string> lines;
    StatusOr<int> status = client.streamEvents(
        id, [&](const std::string& line) { lines.push_back(line); });
    ASSERT_TRUE(status.ok()) << status.status().message();
    EXPECT_EQ(status.value(), 200);
    ASSERT_GE(lines.size(), 4u) << "3 progress events + done";
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
        StatusOr<json::Value> event = json::Value::parse(lines[i]);
        ASSERT_TRUE(event.ok()) << lines[i];
        EXPECT_EQ(event.value().getInt("completed", -1),
                  static_cast<std::int64_t>(i + 1));
        EXPECT_EQ(event.value().getInt("total", -1), 3);
    }
    StatusOr<json::Value> last = json::Value::parse(lines.back());
    ASSERT_TRUE(last.ok());
    EXPECT_TRUE(last.value().getBool("done", false));

    StatusOr<int> missing = client.streamEvents(
        999, [](const std::string&) { FAIL() << "no events expected"; });
    ASSERT_TRUE(missing.ok()) << missing.status().message();
    EXPECT_EQ(missing.value(), 404);
}

TEST(Daemon, CancelRequestsCooperativeStop)
{
    Daemon daemon{smallConfig()};
    ASSERT_TRUE(daemon.start().ok());
    Client client("127.0.0.1", daemon.port());

    const std::uint64_t id =
        submittedId(client.submit(cheapBody("cancel", 4)));
    StatusOr<WireResponse> cancelled = client.cancel(id);
    ASSERT_TRUE(cancelled.ok());
    EXPECT_EQ(cancelled.value().status, 200);
    const std::string status_body = waitDone(client, id);
    StatusOr<json::Value> body = json::Value::parse(status_body);
    ASSERT_TRUE(body.ok());
    EXPECT_TRUE(body.value().getBool("cancel_requested", false));
}

TEST(Daemon, AuthQuotaAndIsolation)
{
    DaemonConfig config = smallConfig();
    config.tenants = {
        // Near-zero refill: the single burst token is all alice gets
        // within this test's lifetime (no timing flake).
        TenantSpec{"alice", "ka", 0.001, 1.0, 0},
        TenantSpec{"bob", "kb", 0.0, 0.0, 1},      // 1 job inflight
    };
    Daemon daemon{std::move(config)};
    ASSERT_TRUE(daemon.start().ok());

    // No key, wrong key -> 401 (and the job routes need auth too).
    Client anonymous("127.0.0.1", daemon.port());
    StatusOr<WireResponse> denied = anonymous.submit(cheapBody());
    ASSERT_TRUE(denied.ok());
    EXPECT_EQ(denied.value().status, 401);
    EXPECT_NE(denied.value().body.find("unauthorized"),
              std::string::npos);
    Client wrong("127.0.0.1", daemon.port(), "nope");
    StatusOr<WireResponse> denied_too = wrong.listJobs();
    ASSERT_TRUE(denied_too.ok());
    EXPECT_EQ(denied_too.value().status, 401);

    // Burst 1: the second immediate submit rate-limits, with a
    // Retry-After hint.
    Client alice("127.0.0.1", daemon.port(), "ka");
    const std::uint64_t id = submittedId(alice.submit(cheapBody()));
    StatusOr<WireResponse> limited = alice.submit(cheapBody());
    ASSERT_TRUE(limited.ok());
    EXPECT_EQ(limited.value().status, 429);
    EXPECT_NE(limited.value().body.find("rate_limited"),
              std::string::npos);
    EXPECT_FALSE(limited.value().header("Retry-After").empty());

    // Isolation: bob neither sees nor cancels alice's job.
    Client bob("127.0.0.1", daemon.port(), "kb");
    StatusOr<WireResponse> hidden = bob.jobStatus(id);
    ASSERT_TRUE(hidden.ok());
    EXPECT_EQ(hidden.value().status, 404);
    StatusOr<WireResponse> uncancellable = bob.cancel(id);
    ASSERT_TRUE(uncancellable.ok());
    EXPECT_EQ(uncancellable.value().status, 404);
    StatusOr<WireResponse> listing = bob.listJobs();
    ASSERT_TRUE(listing.ok());
    EXPECT_EQ(listing.value().body.find("alice"), std::string::npos);

    // Inflight cap: bob's second concurrent job is refused until the
    // first finishes (onDone releases the slot). The pinned job is
    // deliberately heavy so it cannot finish before the next submit.
    const std::uint64_t bob_id =
        submittedId(bob.submit(cheapBody("pin", 2, 5000)));
    StatusOr<WireResponse> full = bob.submit(cheapBody());
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(full.value().status, 429);
    EXPECT_NE(full.value().body.find("too_many_inflight"),
              std::string::npos);
    waitDone(bob, bob_id);
    submittedId(bob.submit(cheapBody())); // slot released -> 202
    waitDone(alice, id);
}

TEST(Daemon, MetricsCarryTenantLabels)
{
    DaemonConfig config = smallConfig();
    config.tenants = {TenantSpec{"carol", "kc", 0.0, 0.0, 0}};
    Daemon daemon{std::move(config)};
    ASSERT_TRUE(daemon.start().ok());
    Client carol("127.0.0.1", daemon.port(), "kc");

    waitDone(carol, submittedId(carol.submit(cheapBody("metrics"))));
    StatusOr<WireResponse> metrics = carol.metrics();
    ASSERT_TRUE(metrics.ok());
    ASSERT_EQ(metrics.value().status, 200);
    const std::string& text = metrics.value().body;
    EXPECT_NE(text.find("tenant=\"carol\""), std::string::npos)
        << "admission/completion metrics must carry the tenant label";
    EXPECT_NE(text.find("cosad_http_requests_total"), std::string::npos);
}

TEST(Daemon, PipelinedRequestsAnswerInOrder)
{
    Daemon daemon{smallConfig()};
    ASSERT_TRUE(daemon.start().ok());
    const std::string wire = rawExchange(
        daemon.port(),
        "GET /healthz HTTP/1.1\r\n\r\n"
        "GET /nope HTTP/1.1\r\n\r\n"
        "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    // Three responses, in request order, on one connection.
    const std::size_t first = wire.find("HTTP/1.1 200");
    const std::size_t second = wire.find("HTTP/1.1 404");
    const std::size_t third = wire.rfind("HTTP/1.1 200");
    ASSERT_NE(first, std::string::npos) << wire;
    ASSERT_NE(second, std::string::npos) << wire;
    ASSERT_NE(third, std::string::npos) << wire;
    EXPECT_LT(first, second);
    EXPECT_LT(second, third);
}

TEST(Daemon, MalformedStartLineGets400AndClose)
{
    Daemon daemon{smallConfig()};
    ASSERT_TRUE(daemon.start().ok());
    const std::string wire =
        rawExchange(daemon.port(), "GARBAGE\r\n\r\n");
    EXPECT_NE(wire.find("HTTP/1.1 400"), std::string::npos) << wire;
    EXPECT_NE(wire.find("Connection: close"), std::string::npos);
}

TEST(Daemon, OversizedBodyGets413)
{
    DaemonConfig config = smallConfig();
    config.max_body_bytes = 64;
    Daemon daemon{std::move(config)};
    ASSERT_TRUE(daemon.start().ok());
    const std::string wire = rawExchange(
        daemon.port(),
        "POST /v1/jobs HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
    EXPECT_NE(wire.find("HTTP/1.1 413"), std::string::npos) << wire;
}

TEST(Daemon, EvictsOldestFinishedJobsBeyondRetention)
{
    DaemonConfig config = smallConfig();
    config.max_finished_jobs = 2;
    Daemon daemon{std::move(config)};
    ASSERT_TRUE(daemon.start().ok());
    Client client("127.0.0.1", daemon.port());

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) {
        ids.push_back(
            submittedId(client.submit(cheapBody("evict", 1))));
        waitDone(client, ids.back());
    }
    StatusOr<WireResponse> evicted = client.jobStatus(ids[0]);
    ASSERT_TRUE(evicted.ok());
    EXPECT_EQ(evicted.value().status, 404)
        << "oldest finished job must be evicted";
    EXPECT_EQ(client.jobStatus(ids[2]).value().status, 200);
}

TEST(Daemon, StopWithJobsInFlightDrainsCleanly)
{
    // stop() (and the destructor) must not deadlock against jobs whose
    // completion hooks take the daemon's own locks.
    Daemon daemon{smallConfig()};
    ASSERT_TRUE(daemon.start().ok());
    Client client("127.0.0.1", daemon.port());
    for (int i = 0; i < 4; ++i)
        submittedId(client.submit(cheapBody("drain", 2)));
    daemon.stop();
}

TEST(Daemon, CacheStatsIs404WithoutAMountedStore)
{
    Daemon daemon{smallConfig()};
    ASSERT_TRUE(daemon.start().ok());
    Client client("127.0.0.1", daemon.port());
    StatusOr<WireResponse> response =
        client.request("GET", "/v1/cache/stats");
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response.value().status, 404) << response.value().body;
}

TEST(Daemon, PersistentCacheSurvivesRestartByteForByte)
{
    // The CI cache-persistence leg, in-process: warm a --cache-dir
    // daemon, restart it on the same directory, and the second daemon
    // must answer from disk with the *same wire bytes* as the cold
    // solve.
    const std::string dir = "cosa_daemon_cache_test_dir";
    std::filesystem::remove_all(dir);
    const std::string body = cheapBody("warm-restart", 3);
    std::string cold;

    DaemonConfig config = smallConfig();
    config.cache_dir = dir;
    config.cache_shards = 4;
    {
        Daemon daemon{config};
        ASSERT_TRUE(daemon.start().ok());
        Client client("127.0.0.1", daemon.port());
        const std::uint64_t id = submittedId(client.submit(body));
        const std::string status_body = waitDone(client, id);
        cold = resultBytes(status_body);
        ASSERT_FALSE(cold.empty());
        // The status body carries cache provenance out-of-band of the
        // deterministic results member.
        EXPECT_NE(status_body.find("\"provenance\""), std::string::npos);
        daemon.stop();
    }

    Daemon warm{config};
    ASSERT_TRUE(warm.start().ok());
    Client client("127.0.0.1", warm.port());

    // The replayed tier is visible before any request touches it.
    StatusOr<WireResponse> stats =
        client.request("GET", "/v1/cache/stats");
    ASSERT_TRUE(stats.ok()) << stats.status().message();
    ASSERT_EQ(stats.value().status, 200) << stats.value().body;
    StatusOr<json::Value> parsed =
        json::Value::parse(stats.value().body);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().getInt("num_shards", 0), 4);
    const std::int64_t entries = parsed.value().getInt("entries", 0);
    EXPECT_GT(entries, 0) << stats.value().body;

    const std::uint64_t id = submittedId(client.submit(body));
    EXPECT_EQ(resultBytes(waitDone(client, id)), cold);

    // And the warm run really was served by the store.
    stats = client.request("GET", "/v1/cache/stats");
    ASSERT_TRUE(stats.ok());
    parsed = json::Value::parse(stats.value().body);
    ASSERT_TRUE(parsed.ok());
    EXPECT_GE(parsed.value().getInt("hits", 0), entries)
        << stats.value().body;
    warm.stop();
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace server
} // namespace cosa

#include <gtest/gtest.h>

#include <string>

#include "engine/scheduler_service.hpp"
#include "server/wire.hpp"

namespace cosa {
namespace server {
namespace {

json::Value
parseBody(const std::string& text)
{
    StatusOr<json::Value> parsed = json::Value::parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().message();
    return parsed.ok() ? std::move(parsed).value() : json::Value();
}

ScheduleRequest
mustDecode(const std::string& text, const std::string& tenant = "")
{
    StatusOr<ScheduleRequest> decoded =
        requestFromJson(parseBody(text), tenant);
    EXPECT_TRUE(decoded.ok()) << decoded.status().message();
    return decoded.ok() ? std::move(decoded).value() : ScheduleRequest();
}

TEST(RequestFromJson, DecodesEveryKnob)
{
    const ScheduleRequest request = mustDecode(R"({
        "workloads": [{"name": "net", "layers": ["3_14_64_64_1"]}],
        "arch": "simba8x8",
        "scheduler": "random",
        "objective": "edp",
        "priority": "batch",
        "weight": 2.5,
        "deadline_sec": 9.0,
        "max_parallelism": 3,
        "deduplicate": false,
        "use_cache": false,
        "warm_start_hints": false,
        "tag": "t1",
        "tenant": "from-body",
        "random": {"max_samples": 50, "target_valid": 50, "seed": 7}
    })");
    ASSERT_EQ(request.workloads.size(), 1u);
    EXPECT_EQ(request.workloads[0].name, "net");
    ASSERT_EQ(request.workloads[0].layers.size(), 1u);
    EXPECT_EQ(request.workloads[0].layers[0].k, 64);
    EXPECT_EQ(request.arch.name, ArchSpec::simba8x8().name);
    EXPECT_EQ(request.scheduler, SchedulerKind::Random);
    EXPECT_EQ(request.objective, SearchObjective::Edp);
    EXPECT_EQ(request.priority, JobPriority::Batch);
    EXPECT_DOUBLE_EQ(request.weight, 2.5);
    EXPECT_DOUBLE_EQ(request.deadline_sec, 9.0);
    EXPECT_EQ(request.max_parallelism, 3);
    EXPECT_FALSE(request.deduplicate);
    EXPECT_FALSE(request.use_cache);
    EXPECT_FALSE(request.warm_start_hints);
    EXPECT_EQ(request.tag, "t1");
    EXPECT_EQ(request.tenant, "from-body");
    EXPECT_EQ(request.random.max_samples, 50);
    EXPECT_EQ(request.random.target_valid, 50);
    EXPECT_EQ(request.random.seed, 7u);
}

TEST(RequestFromJson, AuthTenantOverridesBodyTenant)
{
    const ScheduleRequest request = mustDecode(
        R"({"workloads": ["alexnet"], "arch": "simba",
            "tenant": "impostor"})",
        "alice");
    EXPECT_EQ(request.tenant, "alice");
}

TEST(RequestFromJson, AcceptsNamedWorkloadsAndInlineLayerObjects)
{
    const ScheduleRequest request = mustDecode(R"({
        "workloads": [
            "alexnet",
            {"name": "mine", "layers": [
                {"name": "l0", "r": 3, "s": 3, "p": 14, "q": 14,
                 "c": 64, "k": 128, "n": 1, "stride": 2}]}],
        "arch": "simba"})");
    ASSERT_EQ(request.workloads.size(), 2u);
    EXPECT_FALSE(request.workloads[0].layers.empty());
    ASSERT_EQ(request.workloads[1].layers.size(), 1u);
    const LayerSpec& layer = request.workloads[1].layers[0];
    EXPECT_EQ(layer.c, 64);
    EXPECT_EQ(layer.k, 128);
    EXPECT_EQ(layer.stride, 2);
}

TEST(RequestFromJson, RejectsUnknownTopLevelKey)
{
    StatusOr<ScheduleRequest> decoded = requestFromJson(
        parseBody(R"({"workloads": ["alexnet"], "arch": "simba",
                      "shceduler": "cosa"})"),
        "");
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), ErrorCode::kInvalidInput);
    EXPECT_NE(decoded.status().message().find("shceduler"),
              std::string::npos);
}

TEST(RequestFromJson, RejectsBadInputsWithInvalidInput)
{
    for (const char* bad : {
             R"({"arch": "simba"})",                         // no workloads
             R"({"workloads": [], "arch": "simba"})",        // empty
             R"({"workloads": ["alexnet"]})",                // no arch
             R"({"workloads": ["alexnet"], "arch": "tpu"})", // unknown arch
             R"({"workloads": ["noSuchNet"], "arch": "simba"})",
             R"({"workloads": ["alexnet"], "arch": "simba",
                 "scheduler": "magic"})",
             R"({"workloads": ["alexnet"], "arch": "simba",
                 "objective": "carbon"})",
             R"({"workloads": ["alexnet"], "arch": "simba",
                 "priority": "urgent"})",
             R"({"workloads": ["alexnet"], "arch": "simba",
                 "weight": -1})",
             R"([1,2,3])",
         }) {
        StatusOr<ScheduleRequest> decoded =
            requestFromJson(parseBody(bad), "");
        EXPECT_FALSE(decoded.ok()) << "accepted: " << bad;
        if (!decoded.ok())
            EXPECT_EQ(decoded.status().code(), ErrorCode::kInvalidInput);
    }
}

TEST(ResultsToJson, IsByteIdenticalAcrossRunsAndThreadCounts)
{
    const std::string body = R"({
        "workloads": [{"name": "w", "layers":
            ["3_14_32_32_1", "1_7_32_48_1", "3_14_32_32_1"]}],
        "arch": "simba",
        "scheduler": "random",
        "random": {"max_samples": 40, "target_valid": 40, "seed": 11}})";

    std::string bytes[2];
    const int threads[2] = {1, 4};
    for (int run = 0; run < 2; ++run) {
        ServiceConfig config;
        config.num_threads = threads[run];
        SchedulerService service{config};
        SubmitResult submitted =
            service.submit(mustDecode(body));
        ASSERT_TRUE(submitted.accepted());
        bytes[run] = resultsToJson(submitted.takeJob().wait()).dump();
    }
    EXPECT_FALSE(bytes[0].empty());
    EXPECT_EQ(bytes[0], bytes[1])
        << "canonical result bytes must not depend on executor width";
}

TEST(ResultsToJson, OmitsWallClockAndProvenance)
{
    SchedulerService service{ServiceConfig{}};
    SubmitResult submitted = service.submit(mustDecode(
        R"({"workloads": [{"name": "w", "layers": ["3_14_32_32_1"]}],
            "arch": "simba", "scheduler": "random",
            "random": {"max_samples": 20, "target_valid": 20}})"));
    ASSERT_TRUE(submitted.accepted());
    const std::vector<NetworkResult> results = submitted.takeJob().wait();
    const std::string bytes = resultsToJson(results).dump();
    EXPECT_EQ(bytes.find("wall_time"), std::string::npos);
    EXPECT_EQ(bytes.find("search_time"), std::string::npos);
    // Provenance (cache/warm accounting, search effort) must never
    // touch the canonical bytes — it flips cold vs warm runs and would
    // break the CI cold-vs-warm `cmp`.
    EXPECT_EQ(bytes.find("from_cache"), std::string::npos);
    EXPECT_EQ(bytes.find("num_cache_hits"), std::string::npos);
    EXPECT_EQ(bytes.find("\"samples\""), std::string::npos);
    EXPECT_NE(bytes.find("\"total_cycles\""), std::string::npos);
    EXPECT_NE(bytes.find("\"mapping\""), std::string::npos);
    // The segregated provenance body carries those counters instead.
    const std::string provenance = provenanceToJson(results).dump();
    EXPECT_NE(provenance.find("num_cache_hits"), std::string::npos);
    EXPECT_NE(provenance.find("\"samples\""), std::string::npos);
    EXPECT_NE(provenance.find("cached_layers"), std::string::npos);
    // Parse-then-redump must preserve the bytes (what `cosactl result`
    // relies on to keep the CI diff byte-exact).
    StatusOr<json::Value> reparsed = json::Value::parse(bytes);
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.value().dump(), bytes);
}

TEST(ErrorBody, CarriesTheTypedTaxonomy)
{
    EXPECT_EQ(errorBody(ErrorCode::kInvalidInput, "bad \"x\""),
              "{\"error\":{\"code\":\"invalid_input\","
              "\"message\":\"bad \\\"x\\\"\"}}");
    EXPECT_EQ(errorBody("not_found", "no job 9"),
              "{\"error\":{\"code\":\"not_found\","
              "\"message\":\"no job 9\"}}");
}

TEST(ProgressEventLine, IsOneJsonLine)
{
    JobProgress event;
    event.completed = 2;
    event.total = 5;
    event.unique_index = 1;
    event.layer = "3_14_64_64_1";
    event.found = true;
    event.wall_time_sec = 0.25;
    const std::string line = progressEventLine(event);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1);
    StatusOr<json::Value> parsed =
        json::Value::parse(line.substr(0, line.size() - 1));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().getInt("completed", -1), 2);
    EXPECT_EQ(parsed.value().getString("layer", ""), "3_14_64_64_1");
}

} // namespace
} // namespace server
} // namespace cosa

#include <gtest/gtest.h>

#include "server/auth.hpp"

namespace cosa {
namespace server {
namespace {

using Verdict = AdmissionDecision::Verdict;

TenantSpec
tenant(const std::string& name, const std::string& key, double rps = 0.0,
       double burst = 0.0, int max_inflight = 0)
{
    TenantSpec spec;
    spec.name = name;
    spec.key = key;
    spec.rps = rps;
    spec.burst = burst;
    spec.max_inflight = max_inflight;
    return spec;
}

TEST(TenantRegistry, OpenModeAdmitsEverythingAsDefault)
{
    TenantRegistry registry;
    EXPECT_TRUE(registry.open());
    const AdmissionDecision decision = registry.admit("anything", 0.0);
    EXPECT_EQ(decision.verdict, Verdict::Allow);
    EXPECT_EQ(decision.tenant, "default");
    EXPECT_EQ(registry.authenticate("").verdict, Verdict::Allow);
}

TEST(TenantRegistry, UnknownKeyIsUnauthorized)
{
    TenantRegistry registry{{tenant("alice", "ka")}};
    EXPECT_FALSE(registry.open());
    EXPECT_EQ(registry.admit("wrong", 0.0).verdict,
              Verdict::Unauthorized);
    EXPECT_EQ(registry.authenticate("").verdict, Verdict::Unauthorized);
    EXPECT_EQ(registry.authenticate("ka").verdict, Verdict::Allow);
    EXPECT_EQ(registry.authenticate("ka").tenant, "alice");
}

TEST(TenantRegistry, TokenBucketLimitsBurstThenRefills)
{
    // 2 rps, burst 3: three immediate submissions pass, the fourth is
    // rate-limited with a ~0.5 s retry hint, and half a second later
    // one token is back.
    TenantRegistry registry{{tenant("alice", "ka", 2.0, 3.0)}};
    EXPECT_EQ(registry.admit("ka", 10.0).verdict, Verdict::Allow);
    EXPECT_EQ(registry.admit("ka", 10.0).verdict, Verdict::Allow);
    EXPECT_EQ(registry.admit("ka", 10.0).verdict, Verdict::Allow);

    const AdmissionDecision limited = registry.admit("ka", 10.0);
    EXPECT_EQ(limited.verdict, Verdict::RateLimited);
    EXPECT_NEAR(limited.retry_after_sec, 0.5, 1e-9);

    EXPECT_EQ(registry.admit("ka", 10.5).verdict, Verdict::Allow);
    EXPECT_EQ(registry.admit("ka", 10.5).verdict, Verdict::RateLimited);
}

TEST(TenantRegistry, RefillCapsAtBurst)
{
    TenantRegistry registry{{tenant("alice", "ka", 10.0, 2.0)}};
    EXPECT_EQ(registry.admit("ka", 0.0).verdict, Verdict::Allow);
    // A long idle stretch must not bank more than `burst` tokens.
    EXPECT_EQ(registry.admit("ka", 1000.0).verdict, Verdict::Allow);
    EXPECT_EQ(registry.admit("ka", 1000.0).verdict, Verdict::Allow);
    EXPECT_EQ(registry.admit("ka", 1000.0).verdict, Verdict::RateLimited);
}

TEST(TenantRegistry, InflightCapReleasesOnCompletion)
{
    TenantRegistry registry{{tenant("alice", "ka", 0.0, 0.0, 2)}};
    EXPECT_EQ(registry.admit("ka", 0.0).verdict, Verdict::Allow);
    EXPECT_EQ(registry.admit("ka", 0.0).verdict, Verdict::Allow);
    const AdmissionDecision full = registry.admit("ka", 0.0);
    EXPECT_EQ(full.verdict, Verdict::TooManyInflight);
    EXPECT_GT(full.retry_after_sec, 0.0);
    registry.release("alice");
    EXPECT_EQ(registry.admit("ka", 0.0).verdict, Verdict::Allow);
}

TEST(TenantRegistry, QuotasAreIndependentPerTenant)
{
    TenantRegistry registry{
        {tenant("alice", "ka", 1.0, 1.0), tenant("bob", "kb", 1.0, 1.0)}};
    EXPECT_EQ(registry.admit("ka", 0.0).verdict, Verdict::Allow);
    EXPECT_EQ(registry.admit("ka", 0.0).verdict, Verdict::RateLimited);
    EXPECT_EQ(registry.admit("kb", 0.0).verdict, Verdict::Allow)
        << "alice's empty bucket must not throttle bob";
}

TEST(TenantRegistry, BurstDefaultsToAtLeastOne)
{
    // rps set, burst unset: the bucket still admits one request.
    TenantRegistry registry{{tenant("alice", "ka", 0.5)}};
    EXPECT_EQ(registry.admit("ka", 0.0).verdict, Verdict::Allow);
    EXPECT_EQ(registry.admit("ka", 0.0).verdict, Verdict::RateLimited);
}

TEST(TenantRegistry, ParsesJsonConfig)
{
    StatusOr<std::vector<TenantSpec>> parsed = TenantRegistry::parseConfig(
        R"({"tenants": [
            {"name": "alice", "key": "ka", "rps": 10, "burst": 20,
             "max_inflight": 4},
            {"name": "bob", "key": "kb"}]})");
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    ASSERT_EQ(parsed.value().size(), 2u);
    EXPECT_EQ(parsed.value()[0].name, "alice");
    EXPECT_DOUBLE_EQ(parsed.value()[0].rps, 10.0);
    EXPECT_DOUBLE_EQ(parsed.value()[0].burst, 20.0);
    EXPECT_EQ(parsed.value()[0].max_inflight, 4);
    EXPECT_EQ(parsed.value()[1].key, "kb");
}

TEST(TenantRegistry, RejectsBadConfig)
{
    EXPECT_FALSE(TenantRegistry::parseConfig("not json").ok());
    EXPECT_FALSE(TenantRegistry::parseConfig("{}").ok());
    EXPECT_FALSE(TenantRegistry::parseConfig(
                     R"({"tenants": [{"name": "x"}]})")
                     .ok())
        << "a tenant without a key must be rejected";
}

TEST(TenantRegistry, EnvOverrideReplacesByNameAndAppends)
{
    std::vector<TenantSpec> tenants = {tenant("alice", "old-key", 1.0)};
    const Status applied = TenantRegistry::applyEnvOverride(
        "alice:new-key:5:10:3,carol:kc", &tenants);
    ASSERT_TRUE(applied.ok()) << applied.message();
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[0].key, "new-key");
    EXPECT_DOUBLE_EQ(tenants[0].rps, 5.0);
    EXPECT_DOUBLE_EQ(tenants[0].burst, 10.0);
    EXPECT_EQ(tenants[0].max_inflight, 3);
    EXPECT_EQ(tenants[1].name, "carol");
    EXPECT_EQ(tenants[1].key, "kc");
}

TEST(TenantRegistry, EnvOverrideRejectsMalformedEntries)
{
    std::vector<TenantSpec> tenants;
    EXPECT_FALSE(
        TenantRegistry::applyEnvOverride("nokey", &tenants).ok());
    EXPECT_FALSE(
        TenantRegistry::applyEnvOverride("a:k:banana", &tenants).ok());
}

TEST(ApiKeyOf, PrefersXApiKeyOverBearer)
{
    EXPECT_EQ(apiKeyOf("Bearer abc", ""), "abc");
    EXPECT_EQ(apiKeyOf("Bearer   spaced", ""), "spaced");
    EXPECT_EQ(apiKeyOf("Bearer abc", "xyz"), "xyz");
    EXPECT_EQ(apiKeyOf("", "xyz"), "xyz");
    EXPECT_EQ(apiKeyOf("", ""), "");
    EXPECT_EQ(apiKeyOf("Basic abc", ""), "")
        << "only Bearer credentials are recognized";
}

} // namespace
} // namespace server
} // namespace cosa

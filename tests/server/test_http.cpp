#include <gtest/gtest.h>

#include <string>

#include "server/http.hpp"

namespace cosa {
namespace server {
namespace {

using Result = HttpRequestParser::Result;

HttpRequest
mustParse(const std::string& bytes)
{
    HttpRequestParser parser;
    parser.feed(bytes);
    HttpRequest request;
    EXPECT_EQ(parser.next(&request), Result::Ok);
    return request;
}

TEST(HttpRequestParser, ParsesSimpleGet)
{
    const HttpRequest request =
        mustParse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.target, "/healthz");
    EXPECT_EQ(request.version, "HTTP/1.1");
    EXPECT_EQ(request.header("host"), "x");
    EXPECT_TRUE(request.body.empty());
    EXPECT_TRUE(request.keepAlive());
}

TEST(HttpRequestParser, ParsesPostWithBody)
{
    const HttpRequest request = mustParse(
        "POST /v1/jobs HTTP/1.1\r\nContent-Length: 7\r\n"
        "Content-Type: application/json\r\n\r\n{\"a\":1}");
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.body, "{\"a\":1}");
    EXPECT_EQ(request.header("CONTENT-TYPE"), "application/json");
}

TEST(HttpRequestParser, HeaderLookupIsCaseInsensitiveAndTrimmed)
{
    const HttpRequest request = mustParse(
        "GET / HTTP/1.1\r\nX-Api-Key:   spaced-key  \r\n\r\n");
    EXPECT_EQ(request.header("x-api-key"), "spaced-key");
    EXPECT_EQ(request.header("missing"), "");
}

TEST(HttpRequestParser, TruncatedBodyNeedsMoreThenCompletes)
{
    HttpRequestParser parser;
    parser.feed("POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nab");
    HttpRequest request;
    EXPECT_EQ(parser.next(&request), Result::NeedMore);
    parser.feed("cd");
    ASSERT_EQ(parser.next(&request), Result::Ok);
    EXPECT_EQ(request.body, "abcd");
}

TEST(HttpRequestParser, ByteAtATimeFeedStillParses)
{
    const std::string wire =
        "POST /v1/jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
    HttpRequestParser parser;
    HttpRequest request;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        parser.feed(std::string_view(&wire[i], 1));
        EXPECT_EQ(parser.next(&request), Result::NeedMore);
    }
    parser.feed(std::string_view(&wire[wire.size() - 1], 1));
    ASSERT_EQ(parser.next(&request), Result::Ok);
    EXPECT_EQ(request.body, "hi");
}

TEST(HttpRequestParser, PipelinedRequestsDrainInOrder)
{
    HttpRequestParser parser;
    parser.feed("GET /a HTTP/1.1\r\n\r\n"
                "POST /b HTTP/1.1\r\nContent-Length: 1\r\n\r\nX"
                "GET /c HTTP/1.1\r\n\r\n");
    HttpRequest request;
    ASSERT_EQ(parser.next(&request), Result::Ok);
    EXPECT_EQ(request.target, "/a");
    ASSERT_EQ(parser.next(&request), Result::Ok);
    EXPECT_EQ(request.target, "/b");
    EXPECT_EQ(request.body, "X");
    ASSERT_EQ(parser.next(&request), Result::Ok);
    EXPECT_EQ(request.target, "/c");
    EXPECT_EQ(parser.next(&request), Result::NeedMore);
}

TEST(HttpRequestParser, MalformedStartLineIs400)
{
    HttpRequestParser parser;
    parser.feed("NOT-HTTP\r\nHost: x\r\n\r\n");
    HttpRequest request;
    ASSERT_EQ(parser.next(&request), Result::Error);
    EXPECT_EQ(parser.errorStatus(), 400);
    // The parser stays parked: more bytes cannot resurrect it.
    parser.feed("GET / HTTP/1.1\r\n\r\n");
    EXPECT_EQ(parser.next(&request), Result::Error);
}

TEST(HttpRequestParser, FourTokenStartLineIs400)
{
    HttpRequestParser parser;
    parser.feed("GET / HTTP/1.1 extra\r\n\r\n");
    HttpRequest request;
    ASSERT_EQ(parser.next(&request), Result::Error);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpRequestParser, BadContentLengthIs400)
{
    HttpRequestParser parser;
    parser.feed("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    HttpRequest request;
    ASSERT_EQ(parser.next(&request), Result::Error);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpRequestParser, OversizedHeaderBlockIs431)
{
    HttpRequestParser parser;
    parser.max_header_bytes = 128;
    std::string wire = "GET / HTTP/1.1\r\nX-Big: ";
    wire.append(256, 'a');
    wire += "\r\n\r\n";
    parser.feed(wire);
    HttpRequest request;
    ASSERT_EQ(parser.next(&request), Result::Error);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpRequestParser, OversizedBodyIs413)
{
    HttpRequestParser parser;
    parser.max_body_bytes = 16;
    parser.feed("POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n");
    HttpRequest request;
    ASSERT_EQ(parser.next(&request), Result::Error);
    EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(HttpRequestParser, ConnectionCloseDisablesKeepAlive)
{
    const HttpRequest request =
        mustParse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(request.keepAlive());
}

TEST(HttpResponse, SerializeAddsContentLengthAndReason)
{
    HttpResponse response;
    response.status = 404;
    response.set("Content-Type", "application/json");
    response.body = "{}";
    const std::string wire = response.serialize();
    EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

TEST(HttpResponse, RoundTripsThroughResponseParser)
{
    HttpResponse response;
    response.status = 429;
    response.set("Retry-After", "3");
    response.body = "slow down";
    HttpResponseParser parser;
    parser.feed(response.serialize());
    HttpResponseParser::Response parsed;
    ASSERT_EQ(parser.next(&parsed), HttpResponseParser::Result::Ok);
    EXPECT_EQ(parsed.status, 429);
    EXPECT_EQ(parsed.header("retry-after"), "3");
    EXPECT_EQ(parsed.body, "slow down");
}

TEST(HttpResponse, ChunkedStreamDecodesChunkByChunk)
{
    HttpResponse head;
    head.status = 200;
    head.chunked = true;
    HttpResponseParser parser;
    parser.feed(head.serialize());
    parser.feed(chunkEncode("first\n"));

    std::string chunk;
    ASSERT_EQ(parser.nextChunk(&chunk), HttpResponseParser::Result::Ok);
    EXPECT_EQ(chunk, "first\n");
    EXPECT_EQ(parser.headerStatus(), 200);
    EXPECT_TRUE(parser.headerChunked());
    EXPECT_EQ(parser.nextChunk(&chunk),
              HttpResponseParser::Result::NeedMore);

    parser.feed(chunkEncode("second\n"));
    parser.feed(std::string(kChunkedEnd));
    ASSERT_EQ(parser.nextChunk(&chunk), HttpResponseParser::Result::Ok);
    EXPECT_EQ(chunk, "second\n");
    ASSERT_EQ(parser.nextChunk(&chunk), HttpResponseParser::Result::Ok);
    EXPECT_TRUE(chunk.empty()) << "empty chunk signals stream end";
}

TEST(HttpResponse, ChunkedBodyReassemblesThroughNext)
{
    HttpResponse head;
    head.status = 200;
    head.chunked = true;
    HttpResponseParser parser;
    parser.feed(head.serialize() + chunkEncode("ab") + chunkEncode("cd") +
                std::string(kChunkedEnd));
    HttpResponseParser::Response parsed;
    ASSERT_EQ(parser.next(&parsed), HttpResponseParser::Result::Ok);
    EXPECT_EQ(parsed.body, "abcd");
}

} // namespace
} // namespace server
} // namespace cosa

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace cosa::metrics {
namespace {

// The registry is process-global and immortal, so every test works on
// families with test-unique names and asserts on deltas, never on
// absolute values of shared families.

TEST(Metrics, CounterSumsAcrossConcurrentThreads)
{
    Counter& counter = MetricsRegistry::global().counter(
        "test_metrics_concurrent_total", "concurrency test counter");
    const std::int64_t before = counter.value();

    constexpr int kThreads = 8;
    constexpr int kIncs = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (int i = 0; i < kIncs; ++i)
                counter.inc();
        });
    }
    for (std::thread& thread : threads)
        thread.join();

    EXPECT_EQ(counter.value() - before,
              static_cast<std::int64_t>(kThreads) * kIncs);
}

TEST(Metrics, LabeledChildrenAreDistinctAndStable)
{
    MetricsRegistry& registry = MetricsRegistry::global();
    Counter& a = registry.counter("test_metrics_labeled_total", "labels",
                                  {{"tier", "a"}});
    Counter& b = registry.counter("test_metrics_labeled_total", "labels",
                                  {{"tier", "b"}});
    EXPECT_NE(&a, &b);

    // Re-requesting the same label set returns the same child...
    Counter& a_again = registry.counter("test_metrics_labeled_total", "",
                                        {{"tier", "a"}});
    EXPECT_EQ(&a, &a_again);

    // ...and label order does not matter (the signature is sorted).
    Counter& two = registry.counter("test_metrics_labeled_total", "",
                                    {{"tier", "a"}, {"backend", "x"}});
    Counter& two_swapped = registry.counter(
        "test_metrics_labeled_total", "",
        {{"backend", "x"}, {"tier", "a"}});
    EXPECT_EQ(&two, &two_swapped);

    const std::int64_t before_a = a.value();
    const std::int64_t before_b = b.value();
    a.inc(3);
    EXPECT_EQ(a.value() - before_a, 3);
    EXPECT_EQ(b.value() - before_b, 0);
}

TEST(Metrics, GaugeSetAddAndConcurrentAdds)
{
    Gauge& gauge =
        MetricsRegistry::global().gauge("test_metrics_gauge", "gauge");
    gauge.set(2.5);
    EXPECT_EQ(gauge.value(), 2.5);
    gauge.add(1.25);
    EXPECT_EQ(gauge.value(), 3.75);

    // Integer-valued adds are exact in a double well past this range,
    // so the CAS loop must account for every one of them.
    gauge.set(0.0);
    constexpr int kThreads = 4;
    constexpr int kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&gauge] {
            for (int i = 0; i < kAdds; ++i)
                gauge.add(1.0);
        });
    }
    for (std::thread& thread : threads)
        thread.join();
    EXPECT_EQ(gauge.value(), static_cast<double>(kThreads) * kAdds);
}

TEST(Metrics, HistogramBucketPlacementIsExact)
{
    Histogram& hist = MetricsRegistry::global().histogram(
        "test_metrics_hist_placement", "bucket placement");
    const std::vector<double>& bounds = hist.bounds();
    // Default spec: 2^-20 .. 2^12 in 4x steps = 17 finite bounds.
    ASSERT_EQ(bounds.size(), 17u);
    EXPECT_EQ(bounds.front(), std::ldexp(1.0, -20));
    EXPECT_EQ(bounds.back(), std::ldexp(1.0, 12));

    auto bucketOf = [&](double v) {
        const std::vector<std::int64_t> before = hist.bucketCounts();
        hist.observe(v);
        const std::vector<std::int64_t> after = hist.bucketCounts();
        for (std::size_t i = 0; i < after.size(); ++i) {
            if (after[i] != before[i])
                return static_cast<int>(i);
        }
        return -1;
    };

    // A power of two sits exactly on its upper bound (le is inclusive):
    // 1.0 == 2^0 -> the bucket whose bound is 1.0.
    const int one = bucketOf(1.0);
    ASSERT_GE(one, 0);
    ASSERT_LT(static_cast<std::size_t>(one), bounds.size());
    EXPECT_EQ(bounds[static_cast<std::size_t>(one)], 1.0);

    // Just above a bound moves up one bucket.
    EXPECT_EQ(bucketOf(1.5), one + 1);
    // Zero and negatives land in the first bucket.
    EXPECT_EQ(bucketOf(0.0), 0);
    EXPECT_EQ(bucketOf(-3.0), 0);
    // Values beyond the last finite bound land in +Inf (the extra
    // trailing bucket).
    EXPECT_EQ(bucketOf(1e9), static_cast<int>(bounds.size()));

    EXPECT_EQ(hist.count(), 5);
}

TEST(Metrics, HistogramIsDeterministicAcrossObservationOrder)
{
    // Power-of-two observations make the running sum exact, so the
    // whole histogram (counts and sum) must be identical whatever
    // order — including concurrent order — the observations arrive in.
    MetricsRegistry& registry = MetricsRegistry::global();
    Histogram& fwd = registry.histogram("test_metrics_hist_fwd", "");
    Histogram& rev = registry.histogram("test_metrics_hist_rev", "");

    std::vector<double> values;
    for (int e = -8; e <= 8; ++e)
        for (int repeat = 0; repeat < 3; ++repeat)
            values.push_back(std::ldexp(1.0, e));

    for (double v : values)
        fwd.observe(v);
    for (auto it = values.rbegin(); it != values.rend(); ++it)
        rev.observe(*it);

    EXPECT_EQ(fwd.count(), rev.count());
    EXPECT_EQ(fwd.sum(), rev.sum());
    EXPECT_EQ(fwd.bucketCounts(), rev.bucketCounts());
}

TEST(Metrics, RenderPrometheusFormat)
{
    MetricsRegistry& registry = MetricsRegistry::global();
    registry.counter("test_metrics_render_total", "render-format counter",
                     {{"tier", "batch"}})
        .inc(7);
    registry.gauge("test_metrics_render_gauge", "render-format gauge")
        .set(1.5);
    registry.histogram("test_metrics_render_seconds", "render-format hist")
        .observe(0.25);

    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("# HELP test_metrics_render_total "
                        "render-format counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE test_metrics_render_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_metrics_render_total{tier=\"batch\"} 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE test_metrics_render_gauge gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_metrics_render_gauge 1.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE test_metrics_render_seconds histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_metrics_render_seconds_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(text.find("test_metrics_render_seconds_sum"),
              std::string::npos);
    EXPECT_NE(text.find("test_metrics_render_seconds_count 1\n"),
              std::string::npos);
    EXPECT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');

    // Render order is deterministic: an immediate second render of
    // unchanged data is byte-identical.
    EXPECT_EQ(text, registry.renderPrometheus());

    const std::string json = registry.renderJson();
    EXPECT_NE(json.find("\"test_metrics_render_total\""),
              std::string::npos);
}

TEST(Metrics, CollectorsRunOnRenderAndCanBeRemoved)
{
    MetricsRegistry& registry = MetricsRegistry::global();
    Gauge& gauge = registry.gauge("test_metrics_collector_gauge", "");
    std::atomic<int> calls{0};
    const std::uint64_t id = registry.addCollector([&] {
        ++calls;
        gauge.set(42.0);
    });

    registry.collect();
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(gauge.value(), 42.0);

    (void)registry.renderPrometheus(); // render collects implicitly
    EXPECT_EQ(calls.load(), 2);

    registry.removeCollector(id);
    registry.collect();
    EXPECT_EQ(calls.load(), 2);
}

} // namespace
} // namespace cosa::metrics

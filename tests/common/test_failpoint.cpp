#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/failpoint.hpp"

namespace cosa {
namespace {

/** Disarm around every test so no armed point leaks across tests. */
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::disarmAll(); }
    void TearDown() override { failpoint::disarmAll(); }
};

TEST_F(FailpointTest, DisarmedIsInert)
{
    EXPECT_FALSE(failpoint::armed());
    EXPECT_FALSE(failpoint::shouldTrigger("simplex.factorize"));
    EXPECT_EQ(failpoint::triggerCount("simplex.factorize"), 0);
    // The macro is a no-op end to end.
    COSA_FAILPOINT("simplex.factorize", ErrorCode::kSingularBasis);
}

TEST_F(FailpointTest, ParsesSpecAndRejectsMalformedOnes)
{
    EXPECT_TRUE(failpoint::configure("a=0.5@7,b=1").ok());
    EXPECT_TRUE(failpoint::armed());

    // Rejections must not change the armed set.
    for (const char* bad :
         {"a", "a=", "a=nan", "a=1.5", "a=-0.1", "a=0.5@", "a=0.5@x",
          "=0.5", "a=0.5@7junk"}) {
        const Status status = failpoint::configure(bad);
        EXPECT_FALSE(status.ok()) << "accepted \"" << bad << "\"";
        EXPECT_EQ(status.code(), ErrorCode::kInvalidInput);
    }
    EXPECT_TRUE(failpoint::armed());
    EXPECT_TRUE(failpoint::shouldTrigger("b"));

    EXPECT_TRUE(failpoint::configure("").ok());
    EXPECT_FALSE(failpoint::armed());
}

TEST_F(FailpointTest, ProbabilityOneAlwaysFiresAndCounts)
{
    ASSERT_TRUE(failpoint::configure("cache.save_write=1").ok());
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(failpoint::shouldTrigger("cache.save_write"));
    EXPECT_EQ(failpoint::triggerCount("cache.save_write"), 10);
    // Unarmed points on the same registry stay silent.
    EXPECT_FALSE(failpoint::shouldTrigger("cache.load_entry"));
}

TEST_F(FailpointTest, DecisionStreamIsDeterministicPerSeed)
{
    auto pattern = [](const std::string& spec, int draws) {
        EXPECT_TRUE(failpoint::configure(spec).ok());
        std::vector<bool> fired;
        fired.reserve(static_cast<std::size_t>(draws));
        for (int i = 0; i < draws; ++i)
            fired.push_back(failpoint::shouldTrigger("p"));
        return fired;
    };
    const auto first = pattern("p=0.3@42", 200);
    // Re-arming resets the ordinal stream: the exact pattern replays.
    const auto replay = pattern("p=0.3@42", 200);
    EXPECT_EQ(first, replay);
    // A different seed keys a different stream (equal patterns over
    // 200 draws would be an astronomically unlikely accident).
    const auto reseeded = pattern("p=0.3@43", 200);
    EXPECT_NE(first, reseeded);

    // The empirical rate tracks the configured probability loosely.
    int fired = 0;
    for (bool f : first)
        fired += f;
    EXPECT_GT(fired, 20);
    EXPECT_LT(fired, 140);
}

TEST_F(FailpointTest, MacroThrowsTheDeclaredTypedError)
{
    ASSERT_TRUE(failpoint::configure("io.point=1").ok());
    try {
        COSA_FAILPOINT("io.point", ErrorCode::kIoError);
        FAIL() << "failpoint did not throw";
    } catch (const CosaError& e) {
        EXPECT_EQ(e.status().code(), ErrorCode::kIoError);
        EXPECT_NE(std::string(e.what()).find("io.point"),
                  std::string::npos);
    }
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/trace.hpp"

namespace cosa::trace {
namespace {

/** Every test drives the (global, immortal) tracer through a known
 *  clean state and restores the defaults afterwards. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Tracer& tracer = Tracer::global();
        tracer.setEnabled(false);
        tracer.setFineDetail(false);
        tracer.setSampleEveryN(1);
        tracer.setBufferCapacity(65536);
        tracer.clear();
    }

    void TearDown() override { SetUp(); }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing)
{
    {
        Span span("test.disabled", "test");
        span.arg("ignored");
    }
    EXPECT_EQ(Tracer::global().recordedEvents(), 0);
}

TEST_F(TraceTest, SpanRecordsNameCategoryAndArg)
{
    Tracer& tracer = Tracer::global();
    tracer.setEnabled(true);
    {
        Span span("test.span", "testcat");
        span.arg("detail-string");
    }
    EXPECT_EQ(tracer.recordedEvents(), 1);

    const std::string json = tracer.chromeTraceJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test.span\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"testcat\""), std::string::npos);
    EXPECT_NE(json.find("detail-string"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceTest, ExplicitEndIsIdempotent)
{
    Tracer& tracer = Tracer::global();
    tracer.setEnabled(true);
    {
        Span span("test.end", "test");
        span.end();
        span.end(); // second end records nothing
    } // neither does the destructor
    EXPECT_EQ(tracer.recordedEvents(), 1);
}

TEST_F(TraceTest, FineSpansRequireFineDetail)
{
    Tracer& tracer = Tracer::global();
    tracer.setEnabled(true);
    { Span span("test.fine", "test", /*fine=*/true); }
    EXPECT_EQ(tracer.recordedEvents(), 0);

    tracer.setFineDetail(true);
    { Span span("test.fine", "test", /*fine=*/true); }
    EXPECT_EQ(tracer.recordedEvents(), 1);
}

TEST_F(TraceTest, SamplingRecordsAStridedSubset)
{
    Tracer& tracer = Tracer::global();
    tracer.setEnabled(true);
    tracer.setSampleEveryN(3);

    // A fresh thread starts its sampling sequence at zero, so 9
    // eligible spans record exactly spans 0, 3 and 6.
    std::thread worker([] {
        for (int i = 0; i < 9; ++i)
            Span span("test.sampled", "test");
    });
    worker.join();
    EXPECT_EQ(tracer.recordedEvents(), 3);
}

TEST_F(TraceTest, ConcurrentThreadsEachKeepTheirOwnBuffer)
{
    Tracer& tracer = Tracer::global();
    tracer.setEnabled(true);

    constexpr int kThreads = 4;
    constexpr int kSpans = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpans; ++i)
                Span span("test.mt", "test");
        });
    }
    for (std::thread& thread : threads)
        thread.join();

    EXPECT_EQ(tracer.recordedEvents(),
              static_cast<std::int64_t>(kThreads) * kSpans);
    EXPECT_EQ(tracer.droppedEvents(), 0);
    // Export stays well-formed under multi-thread input and names
    // every thread.
    const std::string json = tracer.chromeTraceJson();
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST_F(TraceTest, FullBufferDropsInsteadOfGrowing)
{
    Tracer& tracer = Tracer::global();
    tracer.setEnabled(true);
    // Applies to buffers created below; requests under the floor of 16
    // are clamped up to it.
    tracer.setBufferCapacity(10);
    EXPECT_EQ(tracer.bufferCapacity(), 16);

    std::thread worker([] {
        for (int i = 0; i < 25; ++i)
            Span span("test.overflow", "test");
    });
    worker.join();

    EXPECT_EQ(tracer.recordedEvents(), 16);
    EXPECT_EQ(tracer.droppedEvents(), 9);
    // The export reports the loss instead of hiding it.
    EXPECT_NE(tracer.chromeTraceJson().find("\"droppedEvents\":9"),
              std::string::npos);
}

TEST_F(TraceTest, ClearResetsEventsDropsAndSampling)
{
    Tracer& tracer = Tracer::global();
    tracer.setEnabled(true);
    { Span span("test.clear", "test"); }
    ASSERT_GT(tracer.recordedEvents(), 0);

    tracer.clear();
    EXPECT_EQ(tracer.recordedEvents(), 0);
    EXPECT_EQ(tracer.droppedEvents(), 0);
}

TEST_F(TraceTest, ManualRecordAndMonotonicClock)
{
    Tracer& tracer = Tracer::global();
    tracer.setEnabled(true);
    const std::int64_t t0 = Tracer::nowMicros();
    const std::int64_t t1 = Tracer::nowMicros();
    EXPECT_GE(t1, t0);

    // The retroactive-record path (queue-wait spans are recorded this
    // way once the job actually starts).
    tracer.record("test.manual", "test", t0, t1 - t0, "queued");
    EXPECT_EQ(tracer.recordedEvents(), 1);
    EXPECT_NE(tracer.chromeTraceJson().find("\"name\":\"test.manual\""),
              std::string::npos);
}

} // namespace
} // namespace cosa::trace

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hpp"

namespace cosa {
namespace {

/** Run @p fn and return everything it wrote to stderr. */
template <typename Fn>
std::string
capturedStderr(Fn&& fn)
{
    ::testing::internal::CaptureStderr();
    fn();
    return ::testing::internal::GetCapturedStderr();
}

class LoggingTest : public ::testing::Test
{
  protected:
    void TearDown() override { setLogLevel(LogLevel::Info); }
};

TEST_F(LoggingTest, DefaultLevelAdmitsInfoButNotDebug)
{
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(capturedStderr([] { warn("w"); }), "warn: w\n");
    EXPECT_EQ(capturedStderr([] { inform("i"); }), "info: i\n");
    EXPECT_EQ(capturedStderr([] { debug("d"); }), "");
}

TEST_F(LoggingTest, ErrorLevelDropsEverythingBelowFatal)
{
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(capturedStderr([] {
                  warn("w");
                  inform("i");
                  debug("d");
              }),
              "");
}

TEST_F(LoggingTest, DebugLevelAdmitsEverything)
{
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(capturedStderr([] { debug("x=", 42); }), "debug: x=42\n");
    EXPECT_EQ(capturedStderr([] { warn("still on"); }),
              "warn: still on\n");
}

TEST_F(LoggingTest, LevelsAreOrdered)
{
    EXPECT_LT(LogLevel::Error, LogLevel::Warn);
    EXPECT_LT(LogLevel::Warn, LogLevel::Info);
    EXPECT_LT(LogLevel::Info, LogLevel::Debug);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace cosa {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02); // law of large numbers
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(5);
    std::vector<int> v(64);
    for (int i = 0; i < 64; ++i)
        v[i] = i;
    auto orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig);
}

} // namespace
} // namespace cosa

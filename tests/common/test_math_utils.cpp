#include <gtest/gtest.h>

#include "common/math_utils.hpp"

namespace cosa {
namespace {

TEST(MathUtils, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 5), 1);
    EXPECT_EQ(ceilDiv(0, 5), 0);
}

TEST(MathUtils, IsPrime)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(1009));
    EXPECT_FALSE(isPrime(1001)); // 7 * 11 * 13
}

TEST(MathUtils, FactorizeBasics)
{
    EXPECT_TRUE(factorize(1).empty());
    EXPECT_EQ(factorize(2), (std::vector<std::int64_t>{2}));
    EXPECT_EQ(factorize(12), (std::vector<std::int64_t>{2, 2, 3}));
    EXPECT_EQ(factorize(256), std::vector<std::int64_t>(8, 2));
    EXPECT_EQ(factorize(1000), (std::vector<std::int64_t>{2, 2, 2, 5, 5, 5}));
}

TEST(MathUtils, FactorizeRoundTrips)
{
    for (std::int64_t n = 1; n <= 3000; ++n) {
        std::int64_t prod = 1;
        for (std::int64_t f : factorize(n)) {
            EXPECT_TRUE(isPrime(f)) << "factor " << f << " of " << n;
            prod *= f;
        }
        EXPECT_EQ(prod, n);
    }
}

TEST(MathUtils, FactorCounts)
{
    auto counts = factorCounts(360); // 2^3 * 3^2 * 5
    EXPECT_EQ(counts[2], 3);
    EXPECT_EQ(counts[3], 2);
    EXPECT_EQ(counts[5], 1);
    EXPECT_EQ(counts.size(), 3u);
}

TEST(MathUtils, PadToSmoothBound)
{
    // 1009 is prime; the next 7-smooth number is 1024? No: 1010=2*5*101.
    // Check the property rather than a hard-coded value.
    const std::int64_t padded = padToSmoothBound(1009, 7);
    EXPECT_GE(padded, 1009);
    EXPECT_LE(factorize(padded).back(), 7);
    // Already-smooth numbers are unchanged.
    EXPECT_EQ(padToSmoothBound(64, 7), 64);
    EXPECT_EQ(padToSmoothBound(1, 7), 1);
}

TEST(MathUtils, Divisors)
{
    EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
    EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
    EXPECT_EQ(divisors(49), (std::vector<std::int64_t>{1, 7, 49}));
}

TEST(MathUtils, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({4.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(MathUtils, NextPow2)
{
    EXPECT_EQ(nextPow2(1), 1);
    EXPECT_EQ(nextPow2(2), 2);
    EXPECT_EQ(nextPow2(3), 4);
    EXPECT_EQ(nextPow2(1000), 1024);
}

TEST(MathUtils, Ipow)
{
    EXPECT_EQ(ipow(2, 0), 1);
    EXPECT_EQ(ipow(2, 10), 1024);
    EXPECT_EQ(ipow(3, 4), 81);
}

} // namespace
} // namespace cosa

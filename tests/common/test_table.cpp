#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace cosa {
namespace {

TEST(TextTable, AlignsColumnsAndPrintsHeader)
{
    TextTable t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TextTable, FmtPrecision)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(2.0, 1), "2.0");
}

TEST(AsciiHistogram, CountsSumToInput)
{
    std::vector<double> vals{0.1, 0.2, 0.5, 0.9, 0.95, 0.99};
    AsciiHistogram h(vals, 4);
    std::size_t total = 0;
    for (std::size_t c : h.counts())
        total += c;
    EXPECT_EQ(total, vals.size());
}

TEST(AsciiHistogram, ExtremesLandInFirstAndLastBin)
{
    std::vector<double> vals{0.0, 10.0, 5.0};
    AsciiHistogram h(vals, 10);
    EXPECT_GE(h.counts().front(), 1u);
    EXPECT_GE(h.counts().back(), 1u);
}

TEST(AsciiHistogram, PrintsBars)
{
    AsciiHistogram h({1.0, 1.0, 2.0}, 2);
    std::ostringstream oss;
    h.print(oss);
    EXPECT_NE(oss.str().find('#'), std::string::npos);
}

} // namespace
} // namespace cosa

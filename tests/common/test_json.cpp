#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/json.hpp"

namespace cosa {
namespace json {
namespace {

Value
mustParse(const std::string& text)
{
    StatusOr<Value> parsed = Value::parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().message();
    return parsed.ok() ? std::move(parsed).value() : Value();
}

TEST(JsonValue, BuildsAndDumpsCanonically)
{
    Value v = Value::object();
    v.set("b", 2);
    v.set("a", 1);
    Value arr = Value::array();
    arr.push("x");
    arr.push(true);
    arr.push(Value());
    v.set("list", std::move(arr));
    // Insertion order, not key order; no whitespace.
    EXPECT_EQ(v.dump(), "{\"b\":2,\"a\":1,\"list\":[\"x\",true,null]}");
}

TEST(JsonValue, SetOverwritesInPlace)
{
    Value v = Value::object();
    v.set("a", 1);
    v.set("b", 2);
    v.set("a", 3);
    EXPECT_EQ(v.dump(), "{\"a\":3,\"b\":2}");
}

TEST(JsonValue, IntAndDoubleAreDistinctKinds)
{
    EXPECT_TRUE(mustParse("12").isInt());
    EXPECT_TRUE(mustParse("12.0").isDouble());
    EXPECT_TRUE(mustParse("1e3").isDouble());
    EXPECT_EQ(mustParse("12").dump(), "12");
    EXPECT_EQ(mustParse("-7").asInt(), -7);
}

TEST(JsonValue, DoublesUseShortestRoundTrip)
{
    Value v = Value(0.1);
    EXPECT_EQ(v.dump(), "0.1");
    EXPECT_EQ(Value(1.0).dump(), "1");
    // NaN/Inf have no JSON form.
    EXPECT_EQ(Value(std::nan("")).dump(), "null");
}

TEST(JsonValue, ParseThenRedumpIsByteStable)
{
    const std::string canonical =
        "{\"net\":\"resnet\",\"cycles\":123456789,\"edp\":0.0625,"
        "\"layers\":[{\"found\":true,\"energy_pj\":1.5e-07},null]}";
    const Value v = mustParse(canonical);
    EXPECT_EQ(v.dump(), canonical);
    // Idempotent through a second cycle too.
    EXPECT_EQ(mustParse(v.dump()).dump(), canonical);
}

TEST(JsonValue, StringEscapesRoundTrip)
{
    Value v = Value::object();
    v.set("s", std::string("tab\t quote\" back\\ nl\n ctrl\x01"));
    const Value parsed = mustParse(v.dump());
    EXPECT_EQ(parsed.getString("s", ""),
              "tab\t quote\" back\\ nl\n ctrl\x01");
}

TEST(JsonValue, ParsesUnicodeEscapes)
{
    const Value v = mustParse("{\"s\":\"\\u00e9\\u0041\"}");
    EXPECT_EQ(v.getString("s", ""), "\xc3\xa9" "A");
}

TEST(JsonValue, TypedGettersFallBack)
{
    const Value v = mustParse(
        "{\"b\":true,\"i\":3,\"d\":2.5,\"s\":\"x\"}");
    EXPECT_EQ(v.getBool("b", false), true);
    EXPECT_EQ(v.getInt("i", -1), 3);
    EXPECT_EQ(v.getDouble("d", 0.0), 2.5);
    EXPECT_EQ(v.getDouble("i", 0.0), 3.0) << "Int widens to double";
    EXPECT_EQ(v.getString("s", ""), "x");
    EXPECT_EQ(v.getInt("missing", 42), 42);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, RejectsMalformedInputWithOffset)
{
    for (const char* bad :
         {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
          "1 2", "{\"a\" 1}", "[1 2]", ""}) {
        StatusOr<Value> parsed = Value::parse(bad);
        EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
        if (!parsed.ok()) {
            EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidInput);
            EXPECT_NE(parsed.status().message().find("at byte"),
                      std::string::npos)
                << parsed.status().message();
        }
    }
}

TEST(JsonValue, RejectsTrailingGarbage)
{
    EXPECT_FALSE(Value::parse("{} extra").ok());
    EXPECT_TRUE(Value::parse("  {}  ").ok()) << "whitespace is fine";
}

TEST(JsonValue, DepthLimitStopsHostileNesting)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    EXPECT_FALSE(Value::parse(deep).ok());
    // 40 levels is comfortably within the limit.
    std::string fine(40, '[');
    fine += std::string(40, ']');
    EXPECT_TRUE(Value::parse(fine).ok());
}

TEST(JsonValue, HugeIntegerWidensToDouble)
{
    const Value v = mustParse("123456789012345678901234567890");
    EXPECT_TRUE(v.isDouble());
}

} // namespace
} // namespace json
} // namespace cosa

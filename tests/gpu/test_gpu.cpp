#include <gtest/gtest.h>

#include "cosa/scheduler.hpp"
#include "gpu/gpu_arch.hpp"
#include "gpu/tuner.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

TEST(GpuArch, K80SpecMatchesPaperSection5D)
{
    const ArchSpec arch = gpu::k80Like();
    // 48KB shared memory, 64KB registers, 1.5MB L2, <=1024 threads.
    EXPECT_EQ(arch.levels[1].capacity_bytes, 48 * 1024);
    EXPECT_EQ(arch.levels[0].capacity_bytes, 64 * 1024);
    EXPECT_EQ(arch.levels[2].capacity_bytes, 1536 * 1024);
    const SpatialGroup* threads = arch.groupOfLevel(0);
    ASSERT_NE(threads, nullptr);
    EXPECT_EQ(threads->fanout, 1024);
    EXPECT_TRUE(arch.levels.back().unbounded());
}

TEST(GpuTuner, FindsValidGpuSchedule)
{
    const LayerSpec layer = LayerSpec::fromLabel("1_14_256_256_1");
    const ArchSpec arch = gpu::k80Like();
    gpu::IterativeTuner tuner;
    const SearchResult result = tuner.schedule(layer, arch);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(validateMapping(result.mapping, layer, arch).valid);
    EXPECT_LE(result.stats.samples, 50);
}

TEST(GpuTuner, MoreTrialsNeverHurt)
{
    const LayerSpec layer = LayerSpec::fromLabel("1_14_256_256_1");
    const ArchSpec arch = gpu::k80Like();
    gpu::TunerConfig few_cfg;
    few_cfg.trials = 10;
    gpu::TunerConfig many_cfg;
    many_cfg.trials = 80;
    const SearchResult few = gpu::IterativeTuner(few_cfg)
                                 .schedule(layer, arch);
    const SearchResult many = gpu::IterativeTuner(many_cfg)
                                  .schedule(layer, arch);
    ASSERT_TRUE(many.found);
    if (few.found)
        EXPECT_LE(many.eval.cycles, few.eval.cycles * 1.0001);
}

TEST(GpuCosa, SchedulesResNetLayerOnGpu)
{
    const LayerSpec layer = LayerSpec::fromLabel("1_14_256_256_1");
    const ArchSpec arch = gpu::k80Like();
    CosaConfig config;
    config.mip.time_limit_sec = 3.0;
    CosaScheduler scheduler(config);
    const SearchResult result = scheduler.schedule(layer, arch);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(validateMapping(result.mapping, layer, arch).valid);
    // Thread-block limit respected by construction.
    const SpatialGroup* threads = arch.groupOfLevel(0);
    EXPECT_LE(result.mapping.spatialProductInGroup(*threads), 1024);
}

TEST(GpuCosa, SolvesFasterThanManyTunerTrials)
{
    const LayerSpec layer = LayerSpec::fromLabel("1_28_256_512_1");
    const ArchSpec arch = gpu::k80Like();
    CosaConfig config;
    config.mip.time_limit_sec = 2.0;
    CosaScheduler scheduler(config);
    const SearchResult cosa_result = scheduler.schedule(layer, arch);
    ASSERT_TRUE(cosa_result.found);
    // One-shot property: a single sample, not a feedback loop.
    EXPECT_EQ(cosa_result.stats.samples, 1);
}

} // namespace
} // namespace cosa

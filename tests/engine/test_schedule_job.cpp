#include <gtest/gtest.h>

#include <vector>

#include "engine/scheduling_engine.hpp"

namespace cosa {
namespace {

/** Cheap deterministic engine config for fast tests. */
EngineConfig
fastRandomConfig(int num_threads)
{
    EngineConfig config;
    config.scheduler = SchedulerKind::Random;
    config.num_threads = num_threads;
    config.random.max_samples = 500;
    config.random.target_valid = 1;
    return config;
}

TEST(ScheduleJob, SubmitWaitMatchesBlockingWrapper)
{
    const Workload net = workloads::resNet50Full();
    const ArchSpec arch = ArchSpec::simbaBaseline();

    const SchedulingEngine blocking_engine(fastRandomConfig(2));
    const NetworkResult blocking = blocking_engine.scheduleNetwork(net, arch);

    const SchedulingEngine async_engine(fastRandomConfig(2));
    ScheduleJob job = async_engine.submit(net, arch);
    const std::vector<NetworkResult> results = job.wait();
    EXPECT_TRUE(job.done());
    EXPECT_FALSE(job.cancelled());
    ASSERT_EQ(results.size(), 1u);

    const NetworkResult& async = results.front();
    ASSERT_EQ(async.layers.size(), blocking.layers.size());
    for (std::size_t l = 0; l < async.layers.size(); ++l) {
        EXPECT_EQ(async.layers[l].result.mapping,
                  blocking.layers[l].result.mapping);
        EXPECT_EQ(async.layers[l].result.eval.cycles,
                  blocking.layers[l].result.eval.cycles);
    }
    EXPECT_EQ(async.total_cycles, blocking.total_cycles);
    EXPECT_EQ(async.num_unique, blocking.num_unique);
    EXPECT_EQ(async.num_solved, blocking.num_solved);
    EXPECT_EQ(async.num_cancelled, 0);

    // wait() is idempotent.
    const auto again = job.wait();
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again.front().total_cycles, async.total_cycles);
}

/** The deterministic (thread-count-independent) part of an event. */
struct EventRecord
{
    std::int64_t completed;
    std::int64_t total;
    int unique_index;
    std::string layer;
    bool from_cache;
    bool found;

    bool operator==(const EventRecord&) const = default;
};

std::vector<EventRecord>
runAndCollect(const SchedulingEngine& engine, const Workload& net,
              const ArchSpec& arch)
{
    std::vector<EventRecord> events;
    ScheduleJob job = engine.submit(net, arch);
    job.onProgress([&](const JobProgress& p) {
        events.push_back({p.completed, p.total, p.unique_index, p.layer,
                          p.from_cache, p.found});
    });
    job.wait();
    return events;
}

TEST(ScheduleJob, ProgressEventsAreDeterministicAcrossThreadCounts)
{
    const Workload net = workloads::resNet50Full();
    const ArchSpec arch = ArchSpec::simbaBaseline();

    const SchedulingEngine one(fastRandomConfig(1));
    const SchedulingEngine many(fastRandomConfig(4));
    const auto e1 = runAndCollect(one, net, arch);
    const auto en = runAndCollect(many, net, arch);

    // Exactly one event per unique problem, in unique-index order,
    // with cumulative counters — identical at any thread count.
    ASSERT_EQ(e1.size(), 23u);
    for (std::size_t i = 0; i < e1.size(); ++i) {
        EXPECT_EQ(e1[i].unique_index, static_cast<int>(i));
        EXPECT_EQ(e1[i].completed, static_cast<std::int64_t>(i) + 1);
        EXPECT_EQ(e1[i].total, 23);
        EXPECT_FALSE(e1[i].from_cache);
    }
    EXPECT_EQ(e1, en);
}

TEST(ScheduleJob, CacheHitsEmitProgressAndLateSubscribersReplay)
{
    const Workload net = workloads::resNet50Full();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const SchedulingEngine engine(fastRandomConfig(2));

    engine.scheduleNetwork(net, arch); // warm the cache

    ScheduleJob job = engine.submit(net, arch);
    job.wait(); // finish first: the subscriber below is maximally late
    std::vector<EventRecord> events;
    job.onProgress([&](const JobProgress& p) {
        events.push_back({p.completed, p.total, p.unique_index, p.layer,
                          p.from_cache, p.found});
    });
    ASSERT_EQ(events.size(), 23u); // replayed in full, in order
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].unique_index, static_cast<int>(i));
        EXPECT_TRUE(events[i].from_cache);
    }
}

TEST(ScheduleJob, CancelMidBatchYieldsConsistentPartialResults)
{
    const Workload net = workloads::resNet50Full();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    // One worker: solves run in unique-problem order, so cancelling
    // from the third progress event deterministically keeps exactly
    // the first three solves.
    const SchedulingEngine engine(fastRandomConfig(1));

    // The callback is installed at submit time, so it observes every
    // event live and the cancellation point is exact.
    ScheduleJob job = engine.submit(net, arch, [](const JobProgress& p) {
        if (p.completed == 3)
            p.requestCancel();
    });
    const std::vector<NetworkResult> results = job.wait();
    EXPECT_TRUE(job.done());
    EXPECT_TRUE(job.cancelled());

    ASSERT_EQ(results.size(), 1u);
    const NetworkResult& net_result = results.front();
    EXPECT_TRUE(net_result.cancelled);
    EXPECT_EQ(net_result.num_unique, 23);
    EXPECT_EQ(net_result.num_solved, 3);
    EXPECT_EQ(net_result.num_cancelled, 20);
    EXPECT_FALSE(net_result.all_found);

    // Per-layer view: solved problems carry full results, cancelled
    // ones are flagged and empty — never a half-written schedule.
    for (const LayerScheduleResult& lr : net_result.layers) {
        if (lr.cancelled) {
            EXPECT_FALSE(lr.result.found);
        } else {
            EXPECT_TRUE(lr.result.found);
            EXPECT_GT(lr.result.eval.cycles, 0.0);
        }
    }

    // No thread-pool work leaked: only completed solves were cached.
    EXPECT_EQ(engine.cacheStats().entries, 3);

    // The engine stays usable: a fresh job finishes the remaining 20
    // problems and serves the 3 solved ones from the cache.
    const NetworkResult resumed = engine.scheduleNetwork(net, arch);
    EXPECT_FALSE(resumed.cancelled);
    EXPECT_EQ(resumed.num_cache_hits, 3);
    EXPECT_EQ(resumed.num_solved, 20);
    EXPECT_EQ(resumed.num_cancelled, 0);
    EXPECT_TRUE(resumed.all_found);
}

TEST(ScheduleJob, MoveAssignOverLiveJobWaitsForIt)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    Workload tiny;
    tiny.name = "tiny";
    tiny.layers.push_back(workloads::listing1Layer());
    const SchedulingEngine engine(fastRandomConfig(2));

    // Overwriting a live handle must join its runner (not terminate on
    // a joinable std::thread) and still complete the first job's work.
    // (The second submit() races the first job, so it may hit or miss
    // the cache; either way both jobs complete and agree.)
    ScheduleJob job = engine.submit(tiny, arch);
    job = engine.submit(tiny, arch);
    const auto results = job.wait();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results.front().num_cache_hits +
                  results.front().num_solved,
              1);
    EXPECT_TRUE(results.front().all_found);
    EXPECT_EQ(engine.cacheStats().entries, 1);
}

TEST(ScheduleJob, DestructorWaitsWithoutCollecting)
{
    const ArchSpec arch = ArchSpec::simbaBaseline();
    Workload tiny;
    tiny.name = "tiny";
    tiny.layers.push_back(workloads::listing1Layer());
    const SchedulingEngine engine(fastRandomConfig(2));
    {
        ScheduleJob dropped = engine.submit(tiny, arch);
        (void)dropped; // destructor must join the runner, not leak it
    }
    // The work still happened (and is cached).
    EXPECT_EQ(engine.cacheStats().entries, 1);
}

} // namespace
} // namespace cosa

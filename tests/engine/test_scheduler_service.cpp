#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/scheduler_service.hpp"
#include "engine/scheduling_engine.hpp"

namespace cosa {
namespace {

/** A synthetic net of @p layers distinct canonical shapes (varying K),
 *  each cheap to schedule with the Random baseline. */
Workload
syntheticNet(const std::string& name, int layers, int base_k = 16)
{
    Workload net;
    net.name = name;
    for (int i = 0; i < layers; ++i) {
        net.layers.push_back(
            LayerSpec::fromLabel("1_7_32_" + std::to_string(base_k + i) +
                                 "_1"));
    }
    return net;
}

/**
 * A Random-scheduler request whose per-layer tasks take a roughly
 * fixed amount of work: target_valid == max_samples keeps the sampler
 * from exiting early, so task duration scales with @p samples.
 */
ScheduleRequest
randomRequest(Workload net, int samples,
              JobPriority priority = JobPriority::Normal)
{
    ScheduleRequest request;
    request.workloads.push_back(std::move(net));
    request.arch = ArchSpec::simbaBaseline();
    request.scheduler = SchedulerKind::Random;
    request.random.max_samples = samples;
    request.random.target_valid = samples;
    request.priority = priority;
    return request;
}

/** Bitwise comparison of the deterministic NetworkResult fields. */
void
expectIdenticalResults(const NetworkResult& a, const NetworkResult& b)
{
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
        EXPECT_EQ(a.layers[l].result.mapping, b.layers[l].result.mapping);
        EXPECT_EQ(a.layers[l].result.found, b.layers[l].result.found);
        EXPECT_EQ(a.layers[l].result.eval.cycles,
                  b.layers[l].result.eval.cycles);
        EXPECT_EQ(a.layers[l].result.eval.energy_pj,
                  b.layers[l].result.eval.energy_pj);
        EXPECT_EQ(a.layers[l].from_cache, b.layers[l].from_cache);
        EXPECT_EQ(a.layers[l].deduplicated, b.layers[l].deduplicated);
        EXPECT_EQ(a.layers[l].unique_index, b.layers[l].unique_index);
    }
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.total_energy_pj, b.total_energy_pj);
    EXPECT_EQ(a.num_layers, b.num_layers);
    EXPECT_EQ(a.num_unique, b.num_unique);
    EXPECT_EQ(a.num_solved, b.num_solved);
    EXPECT_EQ(a.num_cache_hits, b.num_cache_hits);
    EXPECT_EQ(a.num_cancelled, b.num_cancelled);
    EXPECT_EQ(a.search.samples, b.search.samples);
    EXPECT_EQ(a.search.valid_evaluated, b.search.valid_evaluated);
}

TEST(SchedulerService, SubmitMatchesEngineWrapperByteForByte)
{
    const Workload net = workloads::resNet50Full();
    const ArchSpec arch = ArchSpec::simbaBaseline();

    // The historical engine path...
    EngineConfig config;
    config.scheduler = SchedulerKind::Random;
    config.num_threads = 2;
    config.random.max_samples = 500;
    config.random.target_valid = 1;
    const SchedulingEngine engine(config);
    const NetworkResult via_engine = engine.scheduleNetwork(net, arch);

    // ...and the same query as a first-class ScheduleRequest.
    ScheduleRequest request = randomRequest(net, 500);
    request.random.target_valid = 1;
    ServiceConfig service_config;
    service_config.num_threads = 2;
    SchedulerService service(service_config);
    SubmitResult submitted = service.submit(std::move(request));
    ASSERT_TRUE(submitted.accepted());
    const NetworkResult via_service = submitted.takeJob().wait().front();

    expectIdenticalResults(via_engine, via_service);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.completed, 1);
    // num_solved solve tasks plus the job's one prologue task (the job
    // body itself runs as executor continuations, not a thread).
    EXPECT_EQ(stats.executor.tasks_executed, via_service.num_solved + 1);
}

TEST(SchedulerService, DeterministicUnderRandomCoTenantInterleavings)
{
    const Workload ref_net = syntheticNet("reference", 8, 16);
    const int samples = 800;

    // Reference: the request alone, one worker, no co-tenants.
    NetworkResult reference;
    {
        ServiceConfig config;
        config.num_threads = 1;
        SchedulerService service(config);
        SubmitResult submitted =
            service.submit(randomRequest(ref_net, samples));
        ASSERT_TRUE(submitted.accepted());
        reference = submitted.takeJob().wait().front();
    }
    ASSERT_TRUE(reference.all_found);
    EXPECT_EQ(reference.num_solved, 8);

    // The same fixed request must come back bit-identical under any
    // executor width and any co-tenant mix (private caches keep the
    // jobs from sharing state).
    for (int round = 0; round < 3; ++round) {
        ServiceConfig config;
        config.num_threads = 4;
        SchedulerService service(config);
        std::vector<ScheduleJob> tenants;
        tenants.push_back(
            service
                .submit(randomRequest(syntheticNet("noise-a", 6, 64),
                                      600, JobPriority::Interactive))
                .takeJob());
        tenants.push_back(
            service
                .submit(randomRequest(syntheticNet("noise-b", 6, 128),
                                      400, JobPriority::Batch))
                .takeJob());
        SubmitResult submitted =
            service.submit(randomRequest(ref_net, samples));
        ASSERT_TRUE(submitted.accepted());
        tenants.push_back(
            service
                .submit(randomRequest(syntheticNet("noise-c", 6, 256),
                                      500, JobPriority::Normal))
                .takeJob());
        const NetworkResult run = submitted.takeJob().wait().front();
        expectIdenticalResults(reference, run);
        for (ScheduleJob& tenant : tenants)
            tenant.wait();
    }
}

TEST(SchedulerService, StrictTiersPreemptBatchAtTaskBoundaries)
{
    ServiceConfig config;
    config.num_threads = 1; // sequential: completions order execution
    SchedulerService service(config);

    const int batch_total = 16;
    std::atomic<int> batch_done{0};
    SubmitResult batch = service.submit(
        randomRequest(syntheticNet("batch", batch_total, 16), 4000,
                      JobPriority::Batch),
        [&](const JobProgress& p) {
            batch_done.store(static_cast<int>(p.completed),
                             std::memory_order_relaxed);
        });
    ASSERT_TRUE(batch.accepted());

    // Let the batch job actually occupy the worker first.
    while (batch_done.load(std::memory_order_relaxed) < 1)
        std::this_thread::yield();

    // Snapshot the batch's progress at the interactive job's *first*
    // and *last* events: between those two points its remaining tasks
    // are claimable the whole time, so under strict tiers the single
    // worker must not complete a single batch task in between — a
    // race-free assertion (OS scheduling of the runner thread only
    // shifts where the first snapshot lands, which we don't bound).
    std::atomic<int> batch_done_at_interactive_first{-1};
    std::atomic<int> batch_done_at_interactive_end{-1};
    SubmitResult interactive = service.submit(
        randomRequest(syntheticNet("interactive", 4, 200), 4000,
                      JobPriority::Interactive),
        [&](const JobProgress& p) {
            if (p.completed == 1) {
                batch_done_at_interactive_first.store(
                    batch_done.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
            }
            if (p.completed == p.total) {
                batch_done_at_interactive_end.store(
                    batch_done.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
            }
        });
    ASSERT_TRUE(interactive.accepted());

    interactive.takeJob().wait();
    const int done_at_first =
        batch_done_at_interactive_first.load(std::memory_order_relaxed);
    const int done_at_end =
        batch_done_at_interactive_end.load(std::memory_order_relaxed);
    ASSERT_GE(done_at_first, 0);
    EXPECT_EQ(done_at_end, done_at_first);
    EXPECT_LT(done_at_end, batch_total);
    batch.takeJob().wait();
    EXPECT_EQ(batch_done.load(std::memory_order_relaxed), batch_total);
}

TEST(SchedulerService, FairShareInterleavesSameTierTenants)
{
    ServiceConfig config;
    config.num_threads = 1;
    SchedulerService service(config);

    std::mutex mutex;
    std::vector<char> order; // completion sequence across both jobs
    auto recorder = [&](char tag) {
        return [&, tag](const JobProgress&) {
            std::lock_guard<std::mutex> lock(mutex);
            order.push_back(tag);
        };
    };

    const int tasks = 12;
    SubmitResult a = service.submit(
        randomRequest(syntheticNet("tenant-a", tasks, 16), 3000,
                      JobPriority::Batch),
        recorder('a'));
    SubmitResult b = service.submit(
        randomRequest(syntheticNet("tenant-b", tasks, 200), 3000,
                      JobPriority::Batch),
        recorder('b'));
    ASSERT_TRUE(a.accepted());
    ASSERT_TRUE(b.accepted());
    a.takeJob().wait();
    b.takeJob().wait();

    ASSERT_EQ(order.size(), static_cast<std::size_t>(2 * tasks));
    // Equal weights: the single worker alternates between the tenants
    // at task granularity, so B's first completion lands well inside
    // A's stream (strict job-FIFO would put it at index >= tasks).
    std::size_t first_b = order.size();
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] == 'b') {
            first_b = i;
            break;
        }
    }
    EXPECT_LT(first_b, 8u);
    // And the executor's steal counter recorded the cross-job
    // migrations that interleaving implies.
    EXPECT_GT(service.stats().executor.steals, 0);
}

TEST(SchedulerService, FairShareWeightsSkewTaskSlots)
{
    ServiceConfig config;
    config.num_threads = 1;
    SchedulerService service(config);

    std::mutex mutex;
    std::vector<char> order;
    auto recorder = [&](char tag) {
        return [&, tag](const JobProgress&) {
            std::lock_guard<std::mutex> lock(mutex);
            order.push_back(tag);
        };
    };

    const int tasks = 12;
    ScheduleRequest heavy = randomRequest(
        syntheticNet("heavy", tasks, 16), 3000, JobPriority::Batch);
    heavy.weight = 3.0;
    ScheduleRequest light = randomRequest(
        syntheticNet("light", tasks, 200), 3000, JobPriority::Batch);
    light.weight = 1.0;
    SubmitResult a = service.submit(std::move(heavy), recorder('h'));
    SubmitResult b = service.submit(std::move(light), recorder('l'));
    ASSERT_TRUE(a.accepted());
    ASSERT_TRUE(b.accepted());
    a.takeJob().wait();
    b.takeJob().wait();

    ASSERT_EQ(order.size(), static_cast<std::size_t>(2 * tasks));
    // Weight 3 vs 1: the heavy tenant receives ~3 task slots per light
    // slot while both run, so it drains well before the merged stream
    // ends and the tail is all-light.
    std::size_t last_h = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] == 'h')
            last_h = i;
    }
    EXPECT_LT(last_h, order.size() - 4);
}

TEST(SchedulerService, DeadlineAutoCancelKeepsSolvedPrefix)
{
    ServiceConfig config;
    config.num_threads = 1;
    SchedulerService service(config);

    const int tasks = 20;
    ScheduleRequest request = randomRequest(
        syntheticNet("deadline", tasks, 16), 4000, JobPriority::Normal);
    request.deadline_sec = 0.06; // well under the ~20-task runtime
    SubmitResult submitted = service.submit(std::move(request));
    ASSERT_TRUE(submitted.accepted());
    ScheduleJob job = submitted.takeJob();
    const NetworkResult result = job.wait().front();

    EXPECT_TRUE(job.cancelled());
    EXPECT_TRUE(result.cancelled);
    EXPECT_TRUE(result.deadline_expired);
    EXPECT_EQ(result.num_unique, tasks);
    EXPECT_EQ(result.num_solved + result.num_cancelled, tasks);
    EXPECT_GT(result.num_cancelled, 0);
    EXPECT_FALSE(result.all_found);
    // The solved prefix keeps complete results; skipped problems are
    // flagged and empty — never a half-written schedule.
    for (const LayerScheduleResult& lr : result.layers) {
        if (lr.cancelled) {
            EXPECT_FALSE(lr.result.found);
        } else {
            EXPECT_TRUE(lr.result.found);
            EXPECT_GT(lr.result.eval.cycles, 0.0);
        }
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.deadline_expired, 1);
    EXPECT_EQ(stats.cancelled, 1);
}

TEST(SchedulerService, AdmissionControlQueuesAndRejects)
{
    ServiceConfig config;
    config.num_threads = 1;
    config.max_inflight_jobs = 1;
    config.max_queued_jobs = 1;
    SchedulerService service(config);

    SubmitResult a = service.submit(
        randomRequest(syntheticNet("inflight", 10, 16), 4000));
    ASSERT_TRUE(a.accepted());
    SubmitResult b = service.submit(
        randomRequest(syntheticNet("queued", 2, 64), 500));
    ASSERT_TRUE(b.accepted());

    // The queue is at capacity: the third tenant is turned away with a
    // typed outcome instead of a handle.
    SubmitResult c = service.submit(
        randomRequest(syntheticNet("rejected", 2, 128), 500));
    ASSERT_FALSE(c.accepted());
    EXPECT_EQ(c.rejection().reason, Rejected::Reason::QueueFull);
    EXPECT_EQ(c.rejection().queued_jobs, 1);
    EXPECT_EQ(c.rejection().inflight_jobs, 1);
    EXPECT_FALSE(c.rejection().message.empty());

    // Introspection sees one running and one queued job.
    const std::vector<JobInfo> jobs = service.listJobs();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_TRUE(jobs[0].running);
    EXPECT_EQ(jobs[0].tag, "inflight");
    EXPECT_FALSE(jobs[1].running);
    EXPECT_EQ(jobs[1].tag, "queued");
    {
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.submitted, 2);
        EXPECT_EQ(stats.rejected, 1);
        EXPECT_EQ(stats.queued_now, 1);
        EXPECT_EQ(stats.inflight_now, 1);
    }

    // Draining the inflight job starts the queued one (FIFO) and
    // reopens admission.
    const NetworkResult ra = a.takeJob().wait().front();
    EXPECT_TRUE(ra.all_found);
    const NetworkResult rb = b.takeJob().wait().front();
    EXPECT_TRUE(rb.all_found);
    SubmitResult d = service.submit(
        randomRequest(syntheticNet("after", 2, 256), 500));
    ASSERT_TRUE(d.accepted());
    EXPECT_TRUE(d.takeJob().wait().front().all_found);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 3);
    EXPECT_EQ(stats.queued_now, 0);
    EXPECT_EQ(stats.inflight_now, 0);
    // The queued job's wait time was accounted to its tier.
    EXPECT_GT(stats.tiers[static_cast<int>(JobPriority::Normal)]
                  .total_queue_wait_sec,
              0.0);
}

TEST(SchedulerService, SharedCacheIsOptInPerRequest)
{
    ServiceConfig config;
    config.num_threads = 2;
    SchedulerService service(config);
    const Workload net = syntheticNet("cache-net", 4, 16);

    // Private caches (the default): the same query twice solves twice.
    ScheduleRequest first = randomRequest(net, 300);
    ScheduleRequest second = randomRequest(net, 300);
    const NetworkResult r1 =
        service.submit(std::move(first)).takeJob().wait().front();
    const NetworkResult r2 =
        service.submit(std::move(second)).takeJob().wait().front();
    EXPECT_EQ(r1.num_solved, 4);
    EXPECT_EQ(r2.num_solved, 4);
    EXPECT_EQ(r2.num_cache_hits, 0);

    // Opting into a shared cache memoizes across queries and tenants.
    auto cache = std::make_shared<ScheduleCache>();
    ScheduleRequest warm = randomRequest(net, 300);
    warm.cache = cache;
    ScheduleRequest reuse = randomRequest(net, 300);
    reuse.cache = cache;
    const NetworkResult r3 =
        service.submit(std::move(warm)).takeJob().wait().front();
    const NetworkResult r4 =
        service.submit(std::move(reuse)).takeJob().wait().front();
    EXPECT_EQ(r3.num_solved, 4);
    EXPECT_EQ(r4.num_cache_hits, 4);
    EXPECT_EQ(r4.num_solved, 0);
    expectIdenticalResults(r1, r3); // same request, same solves
}

/**
 * The concurrent-tenants stress test the ThreadSanitizer CI job runs:
 * many tenant threads hammer one service with mixed priorities,
 * weights, deadlines, mid-flight cancels and a shared cache while
 * introspection polls from outside.
 */
TEST(SchedulerService, ConcurrentTenantStress)
{
    ServiceConfig config;
    config.num_threads = 4;
    SchedulerService service(config);
    auto shared_cache = std::make_shared<ScheduleCache>(/*capacity=*/64);

    const int tenants = 5;
    const int jobs_per_tenant = 3;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < tenants; ++t) {
        threads.emplace_back([&, t] {
            for (int j = 0; j < jobs_per_tenant; ++j) {
                ScheduleRequest request = randomRequest(
                    syntheticNet("stress-" + std::to_string(t), 6,
                                 16 + 8 * t),
                    300,
                    static_cast<JobPriority>((t + j) % kNumJobPriorities));
                request.weight = 1.0 + t % 3;
                if (t == 1)
                    request.cache = shared_cache;
                if (t == 2 && j == 1)
                    request.deadline_sec = 0.002;
                ScheduleJob::ProgressCallback cancel_cb;
                if (t == 3 && j == 2) {
                    cancel_cb = [](const JobProgress& p) {
                        if (p.completed == 2)
                            p.requestCancel();
                    };
                }
                SubmitResult submitted =
                    service.submit(std::move(request), cancel_cb);
                if (!submitted.accepted()) {
                    ++failures;
                    continue;
                }
                const std::vector<NetworkResult> results =
                    submitted.takeJob().wait();
                if (results.size() != 1)
                    ++failures;
                for (const NetworkResult& r : results) {
                    if (r.num_solved + r.num_cache_hits +
                            r.num_cancelled != r.num_unique)
                        ++failures;
                }
            }
        });
    }
    // Poll introspection concurrently — it must never tear or crash.
    std::atomic<bool> stop{false};
    std::thread poller([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            service.listJobs();
            service.stats();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });
    for (std::thread& thread : threads)
        thread.join();
    stop.store(true, std::memory_order_relaxed);
    poller.join();

    EXPECT_EQ(failures.load(), 0);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, tenants * jobs_per_tenant);
    EXPECT_EQ(stats.completed, tenants * jobs_per_tenant);
    EXPECT_EQ(stats.rejected, 0);
    EXPECT_EQ(stats.queued_now, 0);
    EXPECT_EQ(stats.inflight_now, 0);
}

} // namespace
} // namespace cosa

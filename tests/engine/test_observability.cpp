#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "engine/scheduler_service.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

/** A synthetic net of @p layers distinct canonical shapes (varying K),
 *  each cheap to schedule with the Random baseline. */
Workload
syntheticNet(const std::string& name, int layers, int base_k = 16)
{
    Workload net;
    net.name = name;
    for (int i = 0; i < layers; ++i) {
        net.layers.push_back(LayerSpec::fromLabel(
            "1_7_32_" + std::to_string(base_k + i) + "_1"));
    }
    return net;
}

ScheduleRequest
randomRequest(Workload net, int samples,
              JobPriority priority = JobPriority::Normal)
{
    ScheduleRequest request;
    request.workloads.push_back(std::move(net));
    request.arch = ArchSpec::simbaBaseline();
    request.scheduler = SchedulerKind::Random;
    request.random.max_samples = samples;
    request.random.target_valid = samples;
    request.priority = priority;
    return request;
}

/**
 * Every deterministic field of a NetworkResult, including the solver
 * work counters: equal lp_iterations and mip_nodes per layer means the
 * two runs walked the same pivot sequences and search trees. Times are
 * deliberately excluded (wall clock, not part of the contract).
 */
void
expectIdenticalResults(const NetworkResult& a, const NetworkResult& b)
{
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
        EXPECT_EQ(a.layers[l].result.mapping, b.layers[l].result.mapping);
        EXPECT_EQ(a.layers[l].result.found, b.layers[l].result.found);
        EXPECT_EQ(a.layers[l].result.eval.cycles,
                  b.layers[l].result.eval.cycles);
        EXPECT_EQ(a.layers[l].result.eval.energy_pj,
                  b.layers[l].result.eval.energy_pj);
        EXPECT_EQ(a.layers[l].result.stats.lp_iterations,
                  b.layers[l].result.stats.lp_iterations);
        EXPECT_EQ(a.layers[l].result.stats.mip_nodes,
                  b.layers[l].result.stats.mip_nodes);
        EXPECT_EQ(a.layers[l].result.stats.lu_factorizations,
                  b.layers[l].result.stats.lu_factorizations);
        EXPECT_EQ(a.layers[l].result.stats.lu_eta_updates,
                  b.layers[l].result.stats.lu_eta_updates);
        EXPECT_EQ(a.layers[l].from_cache, b.layers[l].from_cache);
        EXPECT_EQ(a.layers[l].unique_index, b.layers[l].unique_index);
    }
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.total_energy_pj, b.total_energy_pj);
    EXPECT_EQ(a.num_unique, b.num_unique);
    EXPECT_EQ(a.num_solved, b.num_solved);
    EXPECT_EQ(a.search.lp_iterations, b.search.lp_iterations);
    EXPECT_EQ(a.search.mip_nodes, b.search.mip_nodes);
    EXPECT_EQ(a.search.lu_factorizations, b.search.lu_factorizations);
    EXPECT_EQ(a.search.lu_eta_updates, b.search.lu_eta_updates);
    EXPECT_EQ(a.search.warm_starts_installed, b.search.warm_starts_installed);
    EXPECT_EQ(a.search.warm_start_hits, b.search.warm_start_hits);
}

/** One full CoSA ResNet-50 solve on a fresh service + private cache. */
NetworkResult
runResNet50(std::int64_t work_limit)
{
    ScheduleRequest request;
    request.workloads.push_back(workloads::resNet50Full());
    request.arch = ArchSpec::simbaBaseline();
    request.scheduler = SchedulerKind::Cosa;
    request.cosa.mip.work_limit = work_limit;

    ServiceConfig config;
    config.num_threads = 4;
    SchedulerService service(config);
    SubmitResult submitted = service.submit(std::move(request));
    EXPECT_TRUE(submitted.accepted());
    return submitted.takeJob().wait().front();
}

/**
 * The hard observability constraint: results and pivot sequences are
 * bit-identical with tracing off, on at full detail, and sampled.
 * Spans only read the steady clock and append to side buffers, so the
 * solver must not be able to tell the difference.
 */
TEST(Observability, TraceOnOffAndSampledResultsAreBitIdentical)
{
    trace::Tracer& tracer = trace::Tracer::global();
    tracer.setEnabled(false);
    tracer.clear();

    const std::int64_t work_limit = 1500;
    const NetworkResult off = runResNet50(work_limit);
    ASSERT_GT(off.num_solved, 0);
    EXPECT_EQ(tracer.recordedEvents(), 0);

    tracer.setEnabled(true);
    tracer.setFineDetail(true);
    const NetworkResult on = runResNet50(work_limit);
    EXPECT_GT(tracer.recordedEvents(), 0); // instrumentation did fire
    expectIdenticalResults(off, on);

    tracer.clear();
    tracer.setSampleEveryN(5);
    const NetworkResult sampled = runResNet50(work_limit);
    expectIdenticalResults(off, sampled);

    tracer.setEnabled(false);
    tracer.setFineDetail(false);
    tracer.setSampleEveryN(1);
    tracer.clear();
}

TEST(Observability, ServiceCountersSumUnderConcurrentMultiTenantLoad)
{
    metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
    const JobPriority tiers[] = {JobPriority::Interactive,
                                 JobPriority::Normal, JobPriority::Batch};
    std::int64_t submitted_before[3];
    std::int64_t completed_before[3];
    // Admission counters are labeled per (tenant, tier); these requests
    // carry no explicit tenant, so they land on "default".
    for (int t = 0; t < 3; ++t) {
        const metrics::Labels labels = {
            {"tenant", "default"}, {"tier", jobPriorityName(tiers[t])}};
        submitted_before[t] =
            registry
                .counter("cosa_service_jobs_submitted_total", "", labels)
                .value();
        completed_before[t] =
            registry
                .counter("cosa_service_jobs_completed_total", "", labels)
                .value();
    }
    metrics::Counter& layers_counter =
        registry.counter("cosa_job_layers_completed_total");
    const std::int64_t layers_before = layers_counter.value();

    constexpr int kJobsPerTier = 2;
    constexpr int kLayersPerJob = 4;
    ServiceConfig config;
    config.num_threads = 4;
    SchedulerService service(config);

    // One submitting thread per tier, all racing the shared service:
    // the sharded counters still have to account for every event.
    std::vector<std::thread> tenants;
    for (int t = 0; t < 3; ++t) {
        tenants.emplace_back([&service, &tiers, t] {
            std::vector<ScheduleJob> jobs;
            for (int j = 0; j < kJobsPerTier; ++j) {
                SubmitResult submitted = service.submit(randomRequest(
                    syntheticNet("tenant-" + std::to_string(t) + "-" +
                                     std::to_string(j),
                                 kLayersPerJob, 16 + 32 * j),
                    300, tiers[t]));
                ASSERT_TRUE(submitted.accepted());
                jobs.push_back(submitted.takeJob());
            }
            for (ScheduleJob& job : jobs)
                job.wait();
        });
    }
    for (std::thread& tenant : tenants)
        tenant.join();

    for (int t = 0; t < 3; ++t) {
        const metrics::Labels labels = {
            {"tenant", "default"}, {"tier", jobPriorityName(tiers[t])}};
        EXPECT_EQ(registry
                          .counter("cosa_service_jobs_submitted_total",
                                   "", labels)
                          .value() -
                      submitted_before[t],
                  kJobsPerTier)
            << "tier " << jobPriorityName(tiers[t]);
        EXPECT_EQ(registry
                          .counter("cosa_service_jobs_completed_total",
                                   "", labels)
                          .value() -
                      completed_before[t],
                  kJobsPerTier)
            << "tier " << jobPriorityName(tiers[t]);
    }
    // Private caches and distinct shapes: every layer is a real solve.
    EXPECT_EQ(layers_counter.value() - layers_before,
              3 * kJobsPerTier * kLayersPerJob);
}

TEST(Observability, MetricsTextExposesTheTaxonomy)
{
    ServiceConfig config;
    config.num_threads = 2;
    SchedulerService service(config);
    SubmitResult submitted =
        service.submit(randomRequest(syntheticNet("metrics-text", 3), 200));
    ASSERT_TRUE(submitted.accepted());
    submitted.takeJob().wait();

    const std::string text = service.metricsText();
    for (const char* needle :
         {"# TYPE cosa_service_jobs_submitted_total counter",
          "# TYPE cosa_service_queue_wait_seconds histogram",
          "cosa_service_queue_wait_seconds_bucket",
          "# TYPE cosa_solve_layers_total counter",
          "# TYPE cosa_solve_time_seconds histogram",
          "# TYPE cosa_service_inflight_jobs gauge",
          "cosa_executor_tasks_executed",
          "cosa_job_layers_completed_total",
          "tier=\"normal\""}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing: " << needle;
    }
    // The live-state gauges were refreshed by this service's collector:
    // nothing is running anymore.
    EXPECT_NE(text.find("cosa_service_inflight_jobs 0\n"),
              std::string::npos);
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "engine/scheduling_engine.hpp"
#include "engine/thread_pool.hpp"

namespace cosa {
namespace {

/** Cheap deterministic engine config for fast tests. */
EngineConfig
fastRandomConfig(int num_threads)
{
    EngineConfig config;
    config.scheduler = SchedulerKind::Random;
    config.num_threads = num_threads;
    config.random.max_samples = 500;
    config.random.target_valid = 1;
    return config;
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    for (int threads : {1, 2, 4, 7}) {
        const std::size_t n = 100;
        std::vector<std::atomic<int>> hits(n);
        ThreadPool pool(threads);
        pool.run(n, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "task " << i << " with "
                                         << threads << " threads";
    }
}

TEST(ThreadPool, HandlesFewerTasksThanThreads)
{
    std::vector<std::atomic<int>> hits(2);
    ThreadPool pool(8);
    pool.run(2, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(hits[0].load(), 1);
    EXPECT_EQ(hits[1].load(), 1);
    pool.run(0, [&](std::size_t) { FAIL() << "no tasks to run"; });
}

TEST(Executor, RunsEveryTaskOfEverySetOnce)
{
    Executor executor(4);
    const std::size_t n = 64;
    std::vector<std::atomic<int>> hits_a(n), hits_b(n);
    auto set_a = executor.submit(n, [&](std::size_t i) { ++hits_a[i]; });
    Executor::TaskSetOptions batch;
    batch.tier = 2;
    auto set_b = executor.submit(
        n, [&](std::size_t i) { ++hits_b[i]; }, batch);
    set_a->wait();
    set_b->wait();
    EXPECT_TRUE(set_a->done());
    EXPECT_TRUE(set_b->done());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits_a[i].load(), 1);
        EXPECT_EQ(hits_b[i].load(), 1);
    }
    const ExecutorStats stats = executor.stats();
    EXPECT_EQ(stats.tasks_executed, static_cast<std::int64_t>(2 * n));
    EXPECT_EQ(stats.sets_submitted, 2);
    EXPECT_EQ(stats.sets_completed, 2);
}

TEST(Executor, MaxParallelismOneRunsInIndexOrder)
{
    Executor executor(4);
    std::mutex mutex;
    std::vector<std::size_t> order;
    Executor::TaskSetOptions options;
    options.max_parallelism = 1;
    executor
        .submit(
            32,
            [&](std::size_t i) {
                std::lock_guard<std::mutex> lock(mutex);
                order.push_back(i);
            },
            options)
        ->wait();
    ASSERT_EQ(order.size(), 32u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Executor, EmptySetCompletesImmediately)
{
    Executor executor(2);
    auto set = executor.submit(0, [](std::size_t) {
        FAIL() << "no tasks to run";
    });
    EXPECT_TRUE(set->done());
    set->wait(); // returns without blocking
}

TEST(Executor, DestructorDrainsPendingSets)
{
    const std::size_t n = 40;
    std::vector<std::atomic<int>> hits(n);
    {
        Executor executor(3);
        executor.submit(n, [&](std::size_t i) { ++hits[i]; });
        // No wait: destruction must finish the submitted work.
    }
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ScheduleCache, CountsHitsAndMisses)
{
    ScheduleCache cache;
    const ScheduleCacheKey key{"layer", "arch", "sched"};
    EXPECT_FALSE(cache.lookup(key).has_value());
    SearchResult result;
    result.found = true;
    result.eval.cycles = 42.0;
    cache.insert(key, result, LayerSpec::fromLabel("3_14_256_256_1"));
    EXPECT_TRUE(cache.contains(key));
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->eval.cycles, 42.0);
    const ScheduleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.entries, 1);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
    cache.clear();
    EXPECT_FALSE(cache.contains(key));
    EXPECT_EQ(cache.stats().entries, 0);
    // Lifetime counters survive clear().
    EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ScheduleCache, KeySeparatesComponents)
{
    ScheduleCache cache;
    SearchResult result;
    cache.insert({"l1", "a1", "s1", "e1"}, result, LayerSpec{});
    EXPECT_TRUE(cache.contains({"l1", "a1", "s1", "e1"}));
    EXPECT_FALSE(cache.contains({"l2", "a1", "s1", "e1"}));
    EXPECT_FALSE(cache.contains({"l1", "a2", "s1", "e1"}));
    EXPECT_FALSE(cache.contains({"l1", "a1", "s2", "e1"}));
    EXPECT_FALSE(cache.contains({"l1", "a1", "s1", "e2"}));
    EXPECT_FALSE(cache.contains({"l1", "a1", "s1"})); // "" evaluator
}

TEST(ScheduleCache, NearestNeighborFiltersByEvaluator)
{
    ScheduleCache cache;
    SearchResult found;
    found.found = true;
    found.eval.cycles = 11.0;
    const LayerSpec near = LayerSpec::fromLabel("3_14_256_512_1");
    cache.insert({near.canonicalKey(), "arch", "s", "analytical/v1"},
                 found, near);

    const LayerSpec target = LayerSpec::fromLabel("3_14_256_256_1");
    EXPECT_TRUE(
        cache.nearestNeighbor("arch", "s", "analytical/v1", target)
            .has_value());
    // A different evaluation backend shares nothing — an analytical
    // schedule must never seed (or answer) a simulator-backed query.
    EXPECT_FALSE(
        cache.nearestNeighbor("arch", "s", "nocsim/v1", target)
            .has_value());
}

TEST(ScheduleCache, SizeAndLruCapacityBound)
{
    ScheduleCache cache(/*capacity=*/2);
    EXPECT_EQ(cache.capacity(), 2);
    EXPECT_EQ(cache.size(), 0u);
    SearchResult result;
    result.found = true;
    const LayerSpec layer = LayerSpec::fromLabel("3_14_256_256_1");
    cache.insert({"l1", "a", "s"}, result, layer);
    cache.insert({"l2", "a", "s"}, result, layer);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 0);

    // A third entry evicts the least recently used (l1).
    cache.insert({"l3", "a", "s"}, result, layer);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1);
    EXPECT_FALSE(cache.contains({"l1", "a", "s"}));
    EXPECT_TRUE(cache.contains({"l2", "a", "s"}));
    EXPECT_TRUE(cache.contains({"l3", "a", "s"}));

    // A lookup hit refreshes recency: l2 survives the next insert and
    // l3 is the victim instead.
    EXPECT_TRUE(cache.lookup({"l2", "a", "s"}).has_value());
    cache.insert({"l4", "a", "s"}, result, layer);
    EXPECT_TRUE(cache.contains({"l2", "a", "s"}));
    EXPECT_FALSE(cache.contains({"l3", "a", "s"}));
    EXPECT_EQ(cache.stats().evictions, 2);

    // Overwriting an existing key neither grows nor evicts.
    cache.insert({"l4", "a", "s"}, result, layer);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 2);

    // Shrinking the capacity evicts immediately, LRU first.
    cache.setCapacity(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 3);
    EXPECT_TRUE(cache.contains({"l4", "a", "s"}));

    // Unbounded again: entries accumulate freely.
    cache.setCapacity(0);
    cache.insert({"l5", "a", "s"}, result, layer);
    cache.insert({"l6", "a", "s"}, result, layer);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().evictions, 3);
}

TEST(ScheduleCache, SustainedChurnStaysConsistent)
{
    // Exercise the tombstone/compaction path behind O(1) eviction: far
    // more inserts than capacity, then verify exactly the MRU tail
    // survives and persistence sees only live entries.
    ScheduleCache cache(/*capacity=*/4);
    SearchResult result;
    result.found = true;
    const LayerSpec layer = LayerSpec::fromLabel("3_14_256_256_1");
    const int churn = 100;
    for (int i = 0; i < churn; ++i) {
        result.eval.cycles = static_cast<double>(i);
        cache.insert({"l" + std::to_string(i), "a", "s"}, result, layer);
    }
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.stats().evictions, churn - 4);
    for (int i = 0; i < churn - 4; ++i)
        EXPECT_FALSE(cache.contains({"l" + std::to_string(i), "a", "s"}));
    for (int i = churn - 4; i < churn; ++i)
        EXPECT_TRUE(cache.contains({"l" + std::to_string(i), "a", "s"}));

    const std::string path =
        ::testing::TempDir() + "cosa_cache_churn.txt";
    const auto saved = cache.save(path);
    ASSERT_TRUE(saved.ok) << saved.error;
    EXPECT_EQ(saved.entries, 4);
    ScheduleCache reloaded;
    const auto loaded = reloaded.load(path);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, 4);
    const auto hit =
        reloaded.lookup({"l" + std::to_string(churn - 1), "a", "s"});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->eval.cycles, static_cast<double>(churn - 1));
}

TEST(ScheduleCache, EvictionKeepsNearestNeighborConsistent)
{
    // After churn through a bounded cache, nearest-neighbor scans must
    // only see live entries.
    ScheduleCache cache(/*capacity=*/1);
    SearchResult found;
    found.found = true;
    const LayerSpec a = LayerSpec::fromLabel("3_14_256_256_1");
    const LayerSpec b = LayerSpec::fromLabel("3_14_256_512_1");
    found.eval.cycles = 1.0;
    cache.insert({a.canonicalKey(), "arch", "s"}, found, a);
    found.eval.cycles = 2.0;
    cache.insert({b.canonicalKey(), "arch", "s"}, found, b); // evicts a

    const LayerSpec target = LayerSpec::fromLabel("7_112_3_64_2");
    const auto nn = cache.nearestNeighbor("arch", "s", "", target);
    ASSERT_TRUE(nn.has_value());
    EXPECT_EQ(nn->eval.cycles, 2.0); // only the live entry qualifies
}

TEST(CanonicalKey, IgnoresNameButNotShape)
{
    LayerSpec a = LayerSpec::fromLabel("3_14_256_256_1");
    LayerSpec b = a;
    b.name = "renamed";
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());

    LayerSpec c = a;
    c.stride = 2;
    EXPECT_NE(a.canonicalKey(), c.canonicalKey());
    LayerSpec d = a;
    d.n = 4;
    EXPECT_NE(a.canonicalKey(), d.canonicalKey());
}

TEST(ArchFingerprint, SeparatesVariantsIgnoresName)
{
    const ArchSpec base = ArchSpec::simbaBaseline();
    ArchSpec renamed = base;
    renamed.name = "other-name";
    EXPECT_EQ(base.fingerprint(), renamed.fingerprint());
    EXPECT_NE(base.fingerprint(), ArchSpec::simba8x8().fingerprint());
    EXPECT_NE(base.fingerprint(),
              ArchSpec::simbaBigBuffers().fingerprint());
}

TEST(Workloads, ResNet50FullHas53InstancesOf23Shapes)
{
    const Workload full = workloads::resNet50Full();
    EXPECT_EQ(full.layers.size(), 53u);
    std::set<std::string> unique_keys;
    for (const LayerSpec& layer : full.layers)
        unique_keys.insert(layer.canonicalKey());
    EXPECT_EQ(unique_keys.size(), 23u);
    // The unique shapes are exactly those of the 23-shape workload.
    std::set<std::string> reference_keys;
    for (const LayerSpec& layer : workloads::resNet50().layers)
        reference_keys.insert(layer.canonicalKey());
    EXPECT_EQ(unique_keys, reference_keys);
}

TEST(SchedulingEngine, DedupSolvesResNet50FullExactly23Times)
{
    const SchedulingEngine engine(fastRandomConfig(2));
    const NetworkResult result = engine.scheduleNetwork(
        workloads::resNet50Full(), ArchSpec::simbaBaseline());

    EXPECT_EQ(result.num_layers, 53);
    EXPECT_EQ(result.num_unique, 23);
    EXPECT_EQ(result.num_solved, 23);
    EXPECT_EQ(result.num_cache_hits, 0);
    EXPECT_EQ(static_cast<int>(result.layers.size()), 53);

    // The cache counters certify 23 solves: every unique shape missed
    // once (then was inserted); no other lookups happened.
    const ScheduleCacheStats stats = engine.cacheStats();
    EXPECT_EQ(stats.misses, 23);
    EXPECT_EQ(stats.hits, 0);
    EXPECT_EQ(stats.entries, 23);

    // Duplicate instances carry their first occurrence's result.
    for (const LayerScheduleResult& lr : result.layers) {
        ASSERT_GE(lr.unique_index, 0);
        ASSERT_LT(lr.unique_index, 23);
        const LayerScheduleResult& first =
            *std::find_if(result.layers.begin(), result.layers.end(),
                          [&](const LayerScheduleResult& other) {
                              return other.unique_index ==
                                     lr.unique_index;
                          });
        EXPECT_EQ(lr.result.mapping, first.result.mapping);
        EXPECT_EQ(lr.deduplicated, &lr != &first);
    }

    // A repeated query is served entirely from the cache.
    const NetworkResult again = engine.scheduleNetwork(
        workloads::resNet50Full(), ArchSpec::simbaBaseline());
    EXPECT_EQ(again.num_cache_hits, 23);
    EXPECT_EQ(again.num_solved, 0);
    EXPECT_EQ(engine.cacheStats().hits, 23);
    for (std::size_t l = 0; l < again.layers.size(); ++l) {
        EXPECT_TRUE(again.layers[l].from_cache ||
                    again.layers[l].deduplicated);
        EXPECT_EQ(again.layers[l].result.mapping,
                  result.layers[l].result.mapping);
    }
    EXPECT_DOUBLE_EQ(again.total_cycles, result.total_cycles);
    EXPECT_DOUBLE_EQ(again.total_energy_pj, result.total_energy_pj);
}

TEST(SchedulingEngine, DedupOffSolvesEveryInstance)
{
    EngineConfig config = fastRandomConfig(2);
    config.deduplicate = false;
    config.use_cache = false;
    const SchedulingEngine engine(config);
    const NetworkResult result = engine.scheduleNetwork(
        workloads::resNet50Full(), ArchSpec::simbaBaseline());
    EXPECT_EQ(result.num_layers, 53);
    EXPECT_EQ(result.num_unique, 53);
    EXPECT_EQ(result.num_solved, 53);
    EXPECT_EQ(engine.cacheStats().misses, 0); // cache never touched
}

TEST(SchedulingEngine, NThreadRunMatchesOneThreadRunExactly)
{
    const Workload net = workloads::resNet50Full();
    const ArchSpec arch = ArchSpec::simbaBaseline();

    const SchedulingEngine one(fastRandomConfig(1));
    const SchedulingEngine many(fastRandomConfig(4));
    const NetworkResult r1 = one.scheduleNetwork(net, arch);
    const NetworkResult rn = many.scheduleNetwork(net, arch);

    ASSERT_EQ(r1.layers.size(), rn.layers.size());
    for (std::size_t l = 0; l < r1.layers.size(); ++l) {
        EXPECT_EQ(r1.layers[l].result.mapping,
                  rn.layers[l].result.mapping)
            << "layer " << r1.layers[l].layer.name;
        EXPECT_EQ(r1.layers[l].result.found, rn.layers[l].result.found);
        // Evaluations must be byte-identical, not approximately equal:
        // the same mapping through the same model is pure arithmetic.
        EXPECT_EQ(r1.layers[l].result.eval.cycles,
                  rn.layers[l].result.eval.cycles);
        EXPECT_EQ(r1.layers[l].result.eval.energy_pj,
                  rn.layers[l].result.eval.energy_pj);
        EXPECT_EQ(r1.layers[l].unique_index, rn.layers[l].unique_index);
        EXPECT_EQ(r1.layers[l].deduplicated, rn.layers[l].deduplicated);
    }
    EXPECT_EQ(r1.total_cycles, rn.total_cycles);
    EXPECT_EQ(r1.total_energy_pj, rn.total_energy_pj);
    EXPECT_EQ(r1.num_unique, rn.num_unique);
    EXPECT_EQ(r1.num_solved, rn.num_solved);
    EXPECT_EQ(r1.search.samples, rn.search.samples);
    EXPECT_EQ(r1.search.valid_evaluated, rn.search.valid_evaluated);
}

TEST(SchedulingEngine, ArchSweepPartitionsAndReusesCache)
{
    // One shared cache across the sweep, as an arch exploration would.
    auto cache = std::make_shared<ScheduleCache>();
    const SchedulingEngine engine(fastRandomConfig(2), cache);
    const Workload net = workloads::resNet50();

    engine.scheduleNetwork(net, ArchSpec::simbaBaseline());
    EXPECT_EQ(cache->stats().misses, 23);
    EXPECT_EQ(cache->stats().hits, 0);

    // A different arch fingerprint shares nothing: all misses again.
    engine.scheduleNetwork(net, ArchSpec::simba8x8());
    EXPECT_EQ(cache->stats().misses, 46);
    EXPECT_EQ(cache->stats().hits, 0);
    EXPECT_EQ(cache->stats().entries, 46);

    // Revisiting a swept arch is free: all hits, no new entries.
    const NetworkResult back =
        engine.scheduleNetwork(net, ArchSpec::simbaBaseline());
    EXPECT_EQ(back.num_cache_hits, 23);
    EXPECT_EQ(back.num_solved, 0);
    EXPECT_EQ(cache->stats().hits, 23);
    EXPECT_EQ(cache->stats().misses, 46);
    EXPECT_EQ(cache->stats().entries, 46);
}

TEST(SchedulingEngine, SchedulerConfigPartitionsCache)
{
    EngineConfig a = fastRandomConfig(1);
    EngineConfig b = fastRandomConfig(1);
    b.random.seed = a.random.seed + 1;
    const SchedulingEngine ea(a);
    const SchedulingEngine eb(b);
    EXPECT_NE(ea.schedulerKey(), eb.schedulerKey());

    auto cache = std::make_shared<ScheduleCache>();
    const SchedulingEngine shared_a(a, cache);
    const SchedulingEngine shared_b(b, cache);
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    shared_a.scheduleLayer(layer, arch);
    shared_b.scheduleLayer(layer, arch);
    EXPECT_EQ(cache->stats().misses, 2); // no false sharing
    EXPECT_EQ(cache->stats().entries, 2);
}

TEST(SchedulingEngine, EvaluatorFingerprintPartitionsCache)
{
    // Same layer, arch and scheduler config — only the evaluation
    // backend differs. The shared cache must keep the results apart:
    // an entry solved under the analytical model is never served to a
    // simulator-backed engine (whose cycles mean something else).
    auto cache = std::make_shared<ScheduleCache>();
    EngineConfig config = fastRandomConfig(1);
    EngineConfig sim_config = config;
    sim_config.evaluator = std::make_shared<NocSimEvaluator>();
    const SchedulingEngine analytical(config, cache);
    const SchedulingEngine simulated(sim_config, cache);
    ASSERT_EQ(analytical.schedulerKey(), simulated.schedulerKey());
    EXPECT_NE(analytical.evaluator().fingerprint(),
              simulated.evaluator().fingerprint());

    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const SearchResult a1 = analytical.scheduleLayer(layer, arch);
    EXPECT_EQ(cache->stats().misses, 1);
    const SearchResult s1 = simulated.scheduleLayer(layer, arch);
    EXPECT_EQ(cache->stats().misses, 2); // no false hit across backends
    EXPECT_EQ(cache->stats().entries, 2);

    // Each engine re-queries its own entry.
    analytical.scheduleLayer(layer, arch);
    simulated.scheduleLayer(layer, arch);
    EXPECT_EQ(cache->stats().hits, 2);
    EXPECT_EQ(cache->stats().entries, 2);

    // Same search, different platforms: the winning mapping coincides
    // (both searches prune analytically) but the simulated cycles are
    // the simulator's, not the model's.
    ASSERT_TRUE(a1.found);
    ASSERT_TRUE(s1.found);
    EXPECT_EQ(a1.mapping, s1.mapping);
    const SimResult sim = ScheduleSimulator(layer, arch).simulate(s1.mapping);
    ASSERT_TRUE(sim.ok);
    EXPECT_EQ(s1.eval.cycles, static_cast<double>(sim.cycles));
}

TEST(SchedulingEngine, ScheduleLayerFindsValidSchedule)
{
    const SchedulingEngine engine(fastRandomConfig(1));
    const SearchResult result = engine.scheduleLayer(
        workloads::listing1Layer(), ArchSpec::simbaBaseline());
    ASSERT_TRUE(result.found);
    EXPECT_GT(result.eval.cycles, 0.0);
    const ValidationResult valid =
        validateMapping(result.mapping, workloads::listing1Layer(),
                        ArchSpec::simbaBaseline());
    EXPECT_TRUE(valid.valid) << valid.reason;
}

TEST(SchedulingEngine, PortfolioKeepsBestMemberAndMergesStats)
{
    EngineConfig config;
    config.scheduler = SchedulerKind::Portfolio;
    config.num_threads = 1;
    config.cosa.mip.work_limit = 2000;
    config.random.max_samples = 500;
    config.random.target_valid = 1;
    config.hybrid.num_threads = 2;
    config.hybrid.victory_condition = 50;
    const SchedulingEngine engine(config);
    const SearchResult result = engine.scheduleLayer(
        workloads::listing1Layer(), ArchSpec::simbaBaseline());
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(result.scheduler.rfind("Portfolio[", 0) == 0)
        << result.scheduler;
    // Samples of all three members accumulate.
    EXPECT_GT(result.stats.samples, 1);
}

TEST(SchedulingEngine, PortfolioRecordsPerMemberWinCounts)
{
    EngineConfig config;
    config.scheduler = SchedulerKind::Portfolio;
    config.num_threads = 1;
    config.cosa.mip.work_limit = 2000;
    config.random.max_samples = 500;
    config.random.target_valid = 1;
    config.hybrid.num_threads = 2;
    config.hybrid.victory_condition = 50;
    const SchedulingEngine engine(config);
    Workload net;
    net.name = "portfolio-wins";
    net.layers.push_back(workloads::listing1Layer());
    net.layers.push_back(LayerSpec::fromLabel("1_7_32_16_1"));
    const NetworkResult result =
        engine.scheduleNetwork(net, ArchSpec::simbaBaseline());
    // Every solved problem has exactly one winning member.
    EXPECT_EQ(result.portfolio_wins.cosa + result.portfolio_wins.random +
                  result.portfolio_wins.hybrid,
              result.num_solved);
    EXPECT_EQ(result.num_solved, 2);
}

TEST(ScheduleCache, NearestNeighborRanksByShapeThenArch)
{
    ScheduleCache cache;
    SearchResult found;
    found.found = true;
    const LayerSpec a = LayerSpec::fromLabel("3_14_256_256_1");
    const LayerSpec b = LayerSpec::fromLabel("3_14_256_512_1"); // near a
    const LayerSpec c = LayerSpec::fromLabel("7_112_3_64_2");   // far
    cache.insert({c.canonicalKey(), "arch1", "s"}, found, c);
    cache.insert({b.canonicalKey(), "arch1", "s"}, found, b);

    // Nearest shape wins regardless of insertion order.
    found.eval.cycles = 1.0;
    const auto nn = cache.nearestNeighbor("arch1", "s", "", a);
    ASSERT_TRUE(nn.has_value());
    // Distinguish entries via a marker on b's result.
    SearchResult marked = found;
    marked.eval.cycles = 123.0;
    cache.insert({b.canonicalKey(), "arch1", "s"}, marked, b);
    const auto nn2 = cache.nearestNeighbor("arch1", "s", "", a);
    ASSERT_TRUE(nn2.has_value());
    EXPECT_EQ(nn2->eval.cycles, 123.0);

    // The same layer on another arch (distance 0) beats a different
    // shape on the same arch — the arch-sweep seeding case.
    SearchResult other_arch = found;
    other_arch.eval.cycles = 77.0;
    cache.insert({a.canonicalKey(), "arch2", "s"}, other_arch, a);
    const auto nn3 = cache.nearestNeighbor("arch1", "s", "", a);
    ASSERT_TRUE(nn3.has_value());
    EXPECT_EQ(nn3->eval.cycles, 77.0);

    // The exact (layer, arch) pair is never its own neighbor, and a
    // different scheduler key shares nothing.
    cache.insert({a.canonicalKey(), "arch1", "s"}, marked, a);
    const auto nn4 = cache.nearestNeighbor("arch1", "s", "", a);
    ASSERT_TRUE(nn4.has_value());
    EXPECT_EQ(nn4->eval.cycles, 77.0); // still the arch2 twin, not self
    EXPECT_FALSE(cache.nearestNeighbor("arch1", "other", "", a).has_value());
    EXPECT_EQ(cache.stats().neighbor_hits, 4);
}

TEST(SchedulingEngine, CosaArchSweepInstallsAndCountsWarmStarts)
{
    EngineConfig config; // CoSA with warm hints on by default
    config.num_threads = 1;
    config.cosa.mip.work_limit = 4000; // keep the test fast
    const SchedulingEngine engine(config);
    const LayerSpec layer = LayerSpec::fromLabel("1_7_64_32_1");

    const SearchResult first =
        engine.scheduleLayer(layer, ArchSpec::simbaBaseline());
    ASSERT_TRUE(first.found);
    EXPECT_EQ(engine.cacheStats().neighbor_hits, 0); // cold cache

    // Second arch: the baseline schedule is the nearest neighbor
    // (distance 0, different fingerprint) and big buffers can only
    // relax capacity, so the refit start must be accepted.
    const SearchResult second =
        engine.scheduleLayer(layer, ArchSpec::simbaBigBuffers());
    ASSERT_TRUE(second.found);
    EXPECT_EQ(engine.cacheStats().neighbor_hits, 1);
    EXPECT_GE(second.stats.warm_start_hits, 1);

    // A similar shape on the first arch warm-starts from the original.
    const SearchResult sibling = engine.scheduleLayer(
        LayerSpec::fromLabel("1_7_64_64_1"), ArchSpec::simbaBaseline());
    ASSERT_TRUE(sibling.found);
    EXPECT_EQ(engine.cacheStats().neighbor_hits, 2);

    // Warm hints off: no neighbor lookups happen.
    EngineConfig off = config;
    off.warm_start_hints = false;
    const SchedulingEngine engine_off(off);
    engine_off.scheduleLayer(layer, ArchSpec::simbaBaseline());
    engine_off.scheduleLayer(layer, ArchSpec::simbaBigBuffers());
    EXPECT_EQ(engine_off.cacheStats().neighbor_hits, 0);
}

} // namespace
} // namespace cosa

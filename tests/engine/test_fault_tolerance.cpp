#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.hpp"
#include "engine/scheduler_service.hpp"
#include "engine/thread_pool.hpp"
#include "solver/model.hpp"

namespace cosa {
namespace {

/** Disarm around every test so no armed failpoint leaks across tests. */
class FaultTolerance : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::disarmAll(); }
    void TearDown() override { failpoint::disarmAll(); }
};

Workload
tinyNet(const std::string& name, int layers)
{
    Workload net;
    net.name = name;
    for (int i = 0; i < layers; ++i) {
        net.layers.push_back(
            LayerSpec::fromLabel("1_7_32_" + std::to_string(16 + i) + "_1"));
    }
    return net;
}

ScheduleRequest
cosaRequest(Workload net, int layers_parallelism = 1)
{
    ScheduleRequest request;
    request.workloads.push_back(std::move(net));
    request.arch = ArchSpec::simbaBaseline();
    request.scheduler = SchedulerKind::Cosa;
    request.cosa.mip.work_limit = 4000;
    request.max_parallelism = layers_parallelism;
    return request;
}

ScheduleRequest
randomRequest(Workload net, int samples = 300)
{
    ScheduleRequest request;
    request.workloads.push_back(std::move(net));
    request.arch = ArchSpec::simbaBaseline();
    request.scheduler = SchedulerKind::Random;
    request.random.max_samples = samples;
    request.random.target_valid = 1;
    return request;
}

NetworkResult
runOne(SchedulerService& service, ScheduleRequest request)
{
    SubmitResult submitted = service.submit(std::move(request));
    EXPECT_TRUE(submitted.accepted());
    return submitted.takeJob().wait().front();
}

/** An evaluation backend that always throws — one tenant's poisoned
 *  dependency, injected without any global failpoint. */
class ThrowingEvaluator final : public Evaluator
{
  public:
    class Bound final : public BoundEvaluator
    {
      public:
        Evaluation evaluate(const Mapping&) const override
        {
            throw CosaError(ErrorCode::kEvaluatorFault,
                            "synthetic evaluator outage");
        }
    };

    std::unique_ptr<BoundEvaluator> bind(const LayerSpec&,
                                         const ArchSpec&) const override
    {
        return std::make_unique<Bound>();
    }
    std::string fingerprint() const override { return "throwing/v0"; }
};

TEST_F(FaultTolerance, ExecutorContainsThrowingTasks)
{
    // A task that throws must not take down the pool (or the process):
    // the batch finishes and every non-throwing slot is written.
    const ThreadPool pool(2);
    std::vector<int> written(16, 0);
    pool.run(written.size(), [&](std::size_t i) {
        if (i % 2 == 1)
            throw std::runtime_error("task fault");
        written[i] = 1;
    });
    for (std::size_t i = 0; i < written.size(); ++i)
        EXPECT_EQ(written[i], i % 2 == 0 ? 1 : 0) << "slot " << i;
}

TEST_F(FaultTolerance, SolverFaultDegradesToGreedyFallback)
{
    // Every basis factorization fails: CoSA cannot solve, retries on
    // the dense path fail the same way, and the ladder serves the
    // greedy schedule — the job completes, degraded but found.
    ASSERT_TRUE(failpoint::configure("simplex.factorize=1").ok());

    ServiceConfig config;
    config.num_threads = 1;
    SchedulerService service(config);
    const NetworkResult result = runOne(service, cosaRequest(tinyNet("n", 1)));

    ASSERT_EQ(result.layers.size(), 1u);
    const LayerScheduleResult& layer = result.layers[0];
    EXPECT_TRUE(layer.result.found);
    EXPECT_EQ(layer.outcome, LayerOutcome::kDegradedFallback);
    EXPECT_STREQ(layer.fallback_stage.c_str(), "greedy");
    EXPECT_EQ(layer.result.scheduler, "Greedy[fallback]");
    EXPECT_EQ(layer.solve_retries, 2); // the default max_solve_retries
    EXPECT_TRUE(result.all_found);
    EXPECT_EQ(result.num_degraded, 1);
    EXPECT_EQ(result.num_failed, 0);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 1);
    EXPECT_EQ(stats.degraded, 1);
    EXPECT_EQ(stats.failed, 0);
    EXPECT_GT(failpoint::triggerCount("simplex.factorize"), 0);

    const std::string metrics = service.metricsText();
    EXPECT_NE(metrics.find("cosa_layer_fallbacks_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("cosa_errors_total"), std::string::npos);
    EXPECT_NE(metrics.find("cosa_failpoints_triggered_total"),
              std::string::npos);
}

TEST_F(FaultTolerance, RetryBudgetIsRespected)
{
    // With zero retries the firewall goes straight from the first
    // fault to the ladder.
    ASSERT_TRUE(failpoint::configure("simplex.factorize=1").ok());
    ServiceConfig config;
    config.num_threads = 1;
    SchedulerService service(config);
    ScheduleRequest request = cosaRequest(tinyNet("n", 1));
    request.max_solve_retries = 0;
    const NetworkResult result = runOne(service, std::move(request));
    ASSERT_EQ(result.layers.size(), 1u);
    EXPECT_EQ(result.layers[0].outcome, LayerOutcome::kDegradedFallback);
    EXPECT_EQ(result.layers[0].solve_retries, 0);
}

TEST_F(FaultTolerance, FaultyTenantDoesNotPerturbCoTenant)
{
    const Workload healthy_net = tinyNet("healthy", 4);

    // Reference: the healthy job alone.
    NetworkResult reference;
    {
        SchedulerService service(ServiceConfig{2});
        reference = runOne(service, randomRequest(healthy_net));
    }

    // Same job next to a tenant whose evaluator throws on every call.
    SchedulerService service(ServiceConfig{2});
    ScheduleRequest faulty = randomRequest(tinyNet("faulty", 4));
    faulty.evaluator = std::make_shared<ThrowingEvaluator>();
    SubmitResult faulty_submitted = service.submit(std::move(faulty));
    ASSERT_TRUE(faulty_submitted.accepted());
    ScheduleJob faulty_job = faulty_submitted.takeJob();
    const NetworkResult healthy = runOne(service, randomRequest(healthy_net));
    const NetworkResult poisoned = faulty_job.wait().front();

    // The faulty tenant fails typed — contained, not crashed...
    EXPECT_FALSE(poisoned.all_found);
    EXPECT_EQ(poisoned.num_failed, 4);
    for (const LayerScheduleResult& layer : poisoned.layers) {
        EXPECT_EQ(layer.outcome, LayerOutcome::kFailed);
        EXPECT_FALSE(layer.result.found);
        EXPECT_EQ(layer.result.status.code(), ErrorCode::kEvaluatorFault);
    }
    // ...and the co-tenant's result is bit-identical to running alone.
    ASSERT_EQ(healthy.layers.size(), reference.layers.size());
    for (std::size_t l = 0; l < healthy.layers.size(); ++l) {
        EXPECT_EQ(healthy.layers[l].result.mapping,
                  reference.layers[l].result.mapping);
        EXPECT_EQ(healthy.layers[l].result.eval.cycles,
                  reference.layers[l].result.eval.cycles);
        EXPECT_EQ(healthy.layers[l].result.eval.energy_pj,
                  reference.layers[l].result.eval.energy_pj);
        EXPECT_EQ(healthy.layers[l].outcome, LayerOutcome::kOptimal);
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.failed, 1);
    EXPECT_EQ(stats.completed, 2);
}

TEST_F(FaultTolerance, ChaosRunsReplayBitIdentically)
{
    // A fixed failpoint spec + seed + single-lane execution is a
    // deterministic chaos schedule: the same faults hit the same
    // ordinals, so outcomes, retries and schedules all replay.
    auto chaosRun = [&] {
        EXPECT_TRUE(failpoint::configure("simplex.factorize=0.6@11").ok());
        ServiceConfig config;
        config.num_threads = 1;
        SchedulerService service(config);
        return runOne(service, cosaRequest(tinyNet("chaos", 3)));
    };
    const NetworkResult first = chaosRun();
    const NetworkResult second = chaosRun();
    ASSERT_EQ(first.layers.size(), second.layers.size());
    for (std::size_t l = 0; l < first.layers.size(); ++l) {
        EXPECT_EQ(first.layers[l].outcome, second.layers[l].outcome);
        EXPECT_EQ(first.layers[l].solve_retries,
                  second.layers[l].solve_retries);
        EXPECT_EQ(first.layers[l].result.found,
                  second.layers[l].result.found);
        EXPECT_EQ(first.layers[l].result.mapping,
                  second.layers[l].result.mapping);
        EXPECT_EQ(first.layers[l].result.eval.cycles,
                  second.layers[l].result.eval.cycles);
    }
    EXPECT_EQ(first.total_cycles, second.total_cycles);
}

TEST_F(FaultTolerance, NoFailpointsMeansNoBehaviorChange)
{
    // The acceptance contract: with nothing armed, the firewalled
    // service returns exactly what it returned before this PR.
    auto run = [&] {
        SchedulerService service(ServiceConfig{1});
        return runOne(service, cosaRequest(tinyNet("clean", 1)));
    };
    const NetworkResult a = run();
    const NetworkResult b = run();
    ASSERT_EQ(a.layers.size(), 1u);
    EXPECT_TRUE(a.layers[0].result.found);
    EXPECT_EQ(a.layers[0].outcome, LayerOutcome::kOptimal);
    EXPECT_EQ(a.layers[0].solve_retries, 0);
    EXPECT_TRUE(a.layers[0].result.status.ok());
    EXPECT_EQ(a.layers[0].result.mapping, b.layers[0].result.mapping);
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.total_energy_pj, b.total_energy_pj);
}

TEST_F(FaultTolerance, NanArchitectureFailsTypedWithoutLaundering)
{
    // A poisoned problem statement must fail typed — not be laundered
    // into a fallback "schedule" scored by garbage constants.
    ArchSpec arch = ArchSpec::simbaBaseline();
    arch.mac_energy_pj = std::nan("");
    ScheduleRequest request = randomRequest(tinyNet("nan", 1));
    request.arch = arch;

    SchedulerService service(ServiceConfig{1});
    const NetworkResult result = runOne(service, std::move(request));
    ASSERT_EQ(result.layers.size(), 1u);
    EXPECT_EQ(result.layers[0].outcome, LayerOutcome::kFailed);
    EXPECT_FALSE(result.layers[0].result.found);
    EXPECT_EQ(result.layers[0].result.status.code(),
              ErrorCode::kNumericFailure);
    EXPECT_EQ(result.num_failed, 1);
    EXPECT_EQ(service.stats().failed, 1);
}

TEST_F(FaultTolerance, ModelRejectsNonFiniteCoefficients)
{
    solver::Model model;
    const solver::Var x = model.addContinuous(0.0, 10.0, "x");
    model.setObjective(std::nan("") * x, solver::ObjSense::Maximize);
    const solver::MipResult result = model.optimize();
    EXPECT_EQ(result.status, solver::Status::NumericalError);
    EXPECT_FALSE(result.fault.ok());
    EXPECT_EQ(result.fault.code(), ErrorCode::kNumericFailure);
}

// --- crash-safe cache IO -------------------------------------------------

class TempFile
{
  public:
    explicit TempFile(const std::string& name)
        : path_("cosa_fault_test_" + name + ".txt")
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }
    ~TempFile()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/** A cache with @p n distinct found entries. */
void
fillCache(ScheduleCache* cache, int n)
{
    for (int i = 0; i < n; ++i) {
        const LayerSpec layer =
            LayerSpec::fromLabel("1_7_32_" + std::to_string(16 + i) + "_1");
        SearchResult result;
        result.found = true;
        result.eval.valid = true;
        result.eval.cycles = 100.0 + i;
        result.scheduler = "Random";
        cache->insert({layer.canonicalKey(), "arch", "sched", "eval"},
                      result, layer);
    }
}

std::string
readAll(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST_F(FaultTolerance, SaveFailpointLeavesExistingSnapshotIntact)
{
    TempFile file("atomic_save");
    ScheduleCache cache;
    fillCache(&cache, 2);
    ASSERT_TRUE(cache.save(file.path()).ok);
    const std::string original = readAll(file.path());

    // A write fault mid-save must fail the save *and* leave the
    // previous snapshot byte-identical (temp file + atomic rename).
    ScheduleCache bigger;
    fillCache(&bigger, 5);
    ASSERT_TRUE(failpoint::configure("cache.save_write=1").ok());
    const auto faulted = bigger.save(file.path());
    EXPECT_FALSE(faulted.ok);
    EXPECT_FALSE(faulted.error.empty());
    failpoint::disarmAll();

    EXPECT_EQ(readAll(file.path()), original);
    EXPECT_FALSE(std::ifstream(file.path() + ".tmp").good());
    ScheduleCache reloaded;
    const auto io = reloaded.load(file.path());
    EXPECT_TRUE(io.ok);
    EXPECT_EQ(io.entries, 2);
}

TEST_F(FaultTolerance, BitFlippedRecordIsSkippedOnLoad)
{
    TempFile file("bitflip");
    ScheduleCache cache;
    fillCache(&cache, 3);
    ASSERT_TRUE(cache.save(file.path()).ok);

    // Flip one digit inside the second record's scalars: the line
    // still parses, but the record's checksum no longer matches.
    std::string text = readAll(file.path());
    std::size_t scalars = text.find("eval.scalars ");
    ASSERT_NE(scalars, std::string::npos);
    scalars = text.find("eval.scalars ", scalars + 1);
    ASSERT_NE(scalars, std::string::npos);
    const std::size_t digit = scalars + std::string("eval.scalars ").size();
    text[digit] = text[digit] == '9' ? '8' : '9';
    {
        std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
        out << text;
    }

    ScheduleCache survivor;
    const auto io = survivor.load(file.path());
    EXPECT_TRUE(io.ok) << io.error;
    EXPECT_EQ(io.entries, 2);
    EXPECT_EQ(io.skipped, 1);
    EXPECT_EQ(survivor.stats().entries, 2);
}

TEST_F(FaultTolerance, TruncatedSnapshotKeepsThePrefix)
{
    TempFile file("truncated");
    ScheduleCache cache;
    fillCache(&cache, 3);
    ASSERT_TRUE(cache.save(file.path()).ok);

    // Cut the file in the middle of the last record — a crash during a
    // pre-atomic-rename writer, or a torn copy.
    std::string text = readAll(file.path());
    const std::size_t last_entry = text.rfind("entry\n");
    ASSERT_NE(last_entry, std::string::npos);
    text.resize(last_entry + 20);
    {
        std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
        out << text;
    }

    ScheduleCache survivor;
    const auto io = survivor.load(file.path());
    EXPECT_TRUE(io.ok) << io.error;
    EXPECT_EQ(io.entries, 2);
    EXPECT_EQ(io.skipped, 1);
    EXPECT_EQ(survivor.stats().entries, 2);
}

TEST_F(FaultTolerance, LoadEntryFailpointSkipsDeterministically)
{
    TempFile file("load_fp");
    ScheduleCache cache;
    fillCache(&cache, 4);
    ASSERT_TRUE(cache.save(file.path()).ok);

    ASSERT_TRUE(failpoint::configure("cache.load_entry=1").ok());
    ScheduleCache empty;
    const auto io = empty.load(file.path());
    EXPECT_TRUE(io.ok);
    EXPECT_EQ(io.entries, 0);
    EXPECT_EQ(io.skipped, 4);
    EXPECT_EQ(empty.stats().entries, 0);
}

TEST_F(FaultTolerance, SaveCreatesMissingParentDirectories)
{
    const std::string dir = "cosa_fault_test_dir";
    const std::string path = dir + "/nested/cache.txt";
    ScheduleCache cache;
    fillCache(&cache, 1);
    const auto saved = cache.save(path);
    EXPECT_TRUE(saved.ok) << saved.error;
    ScheduleCache reloaded;
    EXPECT_TRUE(reloaded.load(path).ok);
    EXPECT_EQ(reloaded.stats().entries, 1);
    std::remove(path.c_str());
    std::remove((dir + "/nested").c_str());
    std::remove(dir.c_str());
}

} // namespace
} // namespace cosa

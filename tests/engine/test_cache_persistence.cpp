#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/scheduling_engine.hpp"

namespace cosa {
namespace {

/** Self-deleting temp path under the build dir. */
class TempFile
{
  public:
    explicit TempFile(const std::string& name)
        : path_("cosa_cache_test_" + name + ".txt")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

EngineConfig
fastRandomConfig()
{
    EngineConfig config;
    config.scheduler = SchedulerKind::Random;
    config.num_threads = 2;
    config.random.max_samples = 500;
    config.random.target_valid = 1;
    return config;
}

TEST(ScheduleCachePersistence, RoundTripIsBitExact)
{
    TempFile file("roundtrip");
    const Workload net = workloads::resNet50();
    const ArchSpec arch = ArchSpec::simbaBaseline();

    auto cache = std::make_shared<ScheduleCache>();
    const SchedulingEngine engine(fastRandomConfig(), cache);
    const NetworkResult original = engine.scheduleNetwork(net, arch);
    ASSERT_EQ(original.num_solved, 23);

    const auto saved = cache->save(file.path());
    ASSERT_TRUE(saved.ok) << saved.error;
    EXPECT_EQ(saved.entries, 23);

    // A fresh process (fresh cache) revives every solve.
    auto revived = std::make_shared<ScheduleCache>();
    const auto loaded = revived->load(file.path());
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, 23);
    EXPECT_EQ(revived->stats().entries, 23);

    const SchedulingEngine engine2(fastRandomConfig(), revived);
    const NetworkResult replayed = engine2.scheduleNetwork(net, arch);
    EXPECT_EQ(replayed.num_cache_hits, 23);
    EXPECT_EQ(replayed.num_solved, 0);
    ASSERT_EQ(replayed.layers.size(), original.layers.size());
    for (std::size_t l = 0; l < replayed.layers.size(); ++l) {
        EXPECT_EQ(replayed.layers[l].result.mapping,
                  original.layers[l].result.mapping);
        // Bit-exact doubles, not approximately equal: the file stores
        // max_digits10 decimals.
        EXPECT_EQ(replayed.layers[l].result.eval.cycles,
                  original.layers[l].result.eval.cycles);
        EXPECT_EQ(replayed.layers[l].result.eval.energy_pj,
                  original.layers[l].result.eval.energy_pj);
    }
    EXPECT_EQ(replayed.total_cycles, original.total_cycles);
    EXPECT_EQ(replayed.total_energy_pj, original.total_energy_pj);
}

TEST(ScheduleCachePersistence, RoundTripsLruCapacity)
{
    TempFile file("capacity");
    const Workload net = workloads::resNet50();
    const ArchSpec arch = ArchSpec::simbaBaseline();

    auto cache = std::make_shared<ScheduleCache>(/*capacity=*/5);
    const SchedulingEngine engine(fastRandomConfig(), cache);
    engine.scheduleNetwork(net, arch);
    ASSERT_EQ(cache->size(), 5u);
    const auto saved = cache->save(file.path());
    ASSERT_TRUE(saved.ok) << saved.error;
    EXPECT_EQ(saved.entries, 5);

    // A fresh default-constructed cache (the reload path that used to
    // silently come back unbounded) adopts the persisted bound.
    ScheduleCache revived;
    const auto loaded = revived.load(file.path());
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, 5);
    EXPECT_EQ(revived.capacity(), 5);
    EXPECT_EQ(revived.size(), 5u);

    // An explicitly bounded destination keeps its own (tighter) bound
    // and the merge respects it, counting the evictions.
    ScheduleCache bounded(3);
    const auto merged = bounded.load(file.path());
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(bounded.capacity(), 3);
    EXPECT_EQ(bounded.size(), 3u);
    EXPECT_EQ(bounded.stats().evictions, 2);

    // Legacy v1 snapshots (no capacity line) still load: rewrite the
    // file as a v1 reader would have produced it and reload.
    {
        std::ifstream in(file.path());
        std::string line, rest;
        std::getline(in, line); // v2 version header
        rest = "cosa-schedule-cache v1\n";
        while (std::getline(in, line)) {
            if (line.rfind("capacity", 0) == 0)
                continue;
            rest += line + "\n";
        }
        std::ofstream out(file.path());
        out << rest;
    }
    ScheduleCache legacy;
    const auto legacy_loaded = legacy.load(file.path());
    ASSERT_TRUE(legacy_loaded.ok) << legacy_loaded.error;
    EXPECT_EQ(legacy_loaded.entries, 5);
    EXPECT_EQ(legacy.capacity(), 0); // unbounded, as before
}

TEST(ScheduleCachePersistence, PreservesEvaluatorPartitioning)
{
    TempFile file("evaluator");
    const LayerSpec layer = workloads::listing1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();

    auto cache = std::make_shared<ScheduleCache>();
    EngineConfig analytical_config = fastRandomConfig();
    EngineConfig sim_config = analytical_config;
    sim_config.evaluator = std::make_shared<NocSimEvaluator>();
    SchedulingEngine(analytical_config, cache).scheduleLayer(layer, arch);
    SchedulingEngine(sim_config, cache).scheduleLayer(layer, arch);
    ASSERT_EQ(cache->stats().entries, 2);
    ASSERT_TRUE(cache->save(file.path()).ok);

    // After a reload, the analytical entry still never answers a
    // simulator-backed query (and vice versa): both engines hit their
    // own entry, neither solves.
    auto revived = std::make_shared<ScheduleCache>();
    ASSERT_TRUE(revived->load(file.path()).ok);
    const SchedulingEngine analytical(analytical_config, revived);
    const SchedulingEngine simulated(sim_config, revived);
    const SearchResult a = analytical.scheduleLayer(layer, arch);
    const SearchResult s = simulated.scheduleLayer(layer, arch);
    EXPECT_EQ(revived->stats().hits, 2);
    EXPECT_EQ(revived->stats().misses, 0);
    EXPECT_EQ(revived->stats().entries, 2);
    // The simulated entry reports simulator cycles, the analytical one
    // model cycles — they stayed distinct through the file.
    EXPECT_NE(a.eval.cycles, s.eval.cycles);
}

TEST(ScheduleCachePersistence, RevivesNearestNeighborWarmStarts)
{
    TempFile file("warmstart");
    const LayerSpec layer = LayerSpec::fromLabel("1_7_64_32_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();

    EngineConfig config; // CoSA, warm hints on
    config.num_threads = 1;
    config.cosa.mip.work_limit = 4000;
    {
        auto cache = std::make_shared<ScheduleCache>();
        const SchedulingEngine engine(config, cache);
        ASSERT_TRUE(engine.scheduleLayer(layer, arch).found);
        ASSERT_TRUE(cache->save(file.path()).ok);
    }

    // A later run loads the snapshot; a *similar* layer warm-starts
    // from the revived schedule (the cross-layer revival ROADMAP asks
    // persistence to enable).
    auto revived = std::make_shared<ScheduleCache>();
    ASSERT_TRUE(revived->load(file.path()).ok);
    const SchedulingEngine engine(config, revived);
    const SearchResult sibling = engine.scheduleLayer(
        LayerSpec::fromLabel("1_7_64_64_1"), arch);
    ASSERT_TRUE(sibling.found);
    EXPECT_EQ(revived->stats().neighbor_hits, 1);
    EXPECT_GE(sibling.stats.warm_starts_installed, 1);
}

TEST(ScheduleCachePersistence, RejectsWrongVersionAndMalformedFiles)
{
    TempFile file("badversion");
    {
        std::ofstream out(file.path());
        out << "cosa-schedule-cache v999\n";
    }
    ScheduleCache cache;
    const auto wrong = cache.load(file.path());
    EXPECT_FALSE(wrong.ok);
    EXPECT_NE(wrong.error.find("not a"), std::string::npos);
    EXPECT_EQ(cache.stats().entries, 0);

    // A truncated record is no longer fatal: it is skipped (counted)
    // and the load as a whole succeeds with whatever survived.
    {
        std::ofstream out(file.path());
        out << "cosa-schedule-cache v1\n";
        out << "entry\n";
        out << "key.layer l\n";
        out << "garbage\n";
    }
    const auto truncated = cache.load(file.path());
    EXPECT_TRUE(truncated.ok);
    EXPECT_EQ(truncated.entries, 0);
    EXPECT_EQ(truncated.skipped, 1);
    EXPECT_EQ(cache.stats().entries, 0);

    EXPECT_FALSE(cache.load("no_such_dir/no_such_file.txt").ok);
}

TEST(ScheduleCachePersistence, LoadMergesIntoExistingEntries)
{
    TempFile file("merge");
    SearchResult found;
    found.found = true;
    found.eval.valid = true;
    found.eval.cycles = 7.0;
    found.scheduler = "Random";
    const LayerSpec layer = LayerSpec::fromLabel("1_7_32_16_1");

    ScheduleCache first;
    first.insert({layer.canonicalKey(), "archA", "s", "e"}, found, layer);
    ASSERT_TRUE(first.save(file.path()).ok);

    // The receiving cache already holds a different problem plus a
    // *newer* result under the same key; load keeps the merge simple
    // and lets the file win on collision (documented).
    ScheduleCache second;
    SearchResult newer = found;
    newer.eval.cycles = 9.0;
    second.insert({layer.canonicalKey(), "archA", "s", "e"}, newer, layer);
    second.insert({layer.canonicalKey(), "archB", "s", "e"}, found, layer);
    const auto io = second.load(file.path());
    ASSERT_TRUE(io.ok) << io.error;
    EXPECT_EQ(io.entries, 1);
    EXPECT_EQ(second.stats().entries, 2);
    const auto hit =
        second.lookup({layer.canonicalKey(), "archA", "s", "e"});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->eval.cycles, 7.0);
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/scheduler_service.hpp"
#include "engine/thread_pool.hpp"

namespace cosa {
namespace {

/** Live thread count of this process (/proc/self/status "Threads:"). */
int
threadCount()
{
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("Threads:", 0) == 0) {
            std::istringstream field(line.substr(8));
            int count = 0;
            field >> count;
            return count;
        }
    }
    return -1;
}

/** One cheap single-layer request (Random scheduler, ~@p samples of
 *  work), with a distinct K so jobs don't all dedup to one problem. */
ScheduleRequest
tinyRequest(int k, int samples, JobPriority priority = JobPriority::Normal)
{
    ScheduleRequest request;
    Workload net;
    net.name = "tiny" + std::to_string(k);
    net.layers.push_back(
        LayerSpec::fromLabel("1_7_32_" + std::to_string(k) + "_1"));
    request.workloads.push_back(std::move(net));
    request.arch = ArchSpec::simbaBaseline();
    request.scheduler = SchedulerKind::Random;
    request.random.max_samples = samples;
    request.random.target_valid = samples;
    request.priority = priority;
    request.use_cache = false; // every job does real work
    return request;
}

// The tentpole's load-bearing property: a queued job is heap state,
// not a parked thread. A thousand queued jobs must not grow the
// process thread census by even one.
TEST(ThreadlessJobs, ThousandQueuedJobsHoldNoRunnerThreads)
{
    ServiceConfig config;
    config.num_threads = 2;
    config.max_inflight_jobs = 2;
    SchedulerService service{config};

    // Warm up: one job end-to-end, so every lazily-created service
    // thread (executor workers) exists before the baseline reading.
    service.submit(tinyRequest(16, 2)).takeJob().wait();
    const int baseline = threadCount();
    ASSERT_GT(baseline, 0);

    std::vector<ScheduleJob> jobs;
    jobs.reserve(1002);
    // Two slow jobs pin the inflight slots so the rest must queue
    // (sized to outlast the 1000-submission loop below).
    jobs.push_back(service.submit(tinyRequest(300, 40000)).takeJob());
    jobs.push_back(service.submit(tinyRequest(301, 40000)).takeJob());
    for (int i = 0; i < 1000; ++i)
        jobs.push_back(service.submit(tinyRequest(32 + i, 1)).takeJob());

    const ServiceStats mid = service.stats();
    EXPECT_GT(mid.queued_now, 800)
        << "the flood must actually be queued for this test to bite";
    EXPECT_EQ(threadCount(), baseline)
        << "queued jobs must not own runner threads";

    for (ScheduleJob& job : jobs)
        job.wait();
    EXPECT_EQ(threadCount(), baseline)
        << "running jobs must not own runner threads either";

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 1003);
    EXPECT_EQ(stats.queued_now, 0);
    EXPECT_EQ(stats.inflight_now, 0);
}

// Executor-level bounded starvation: with aging on, a Batch-tier task
// set under a sustained Interactive flood is dispatched within a few
// aging periods; with aging off it waits for the whole flood.
TEST(ThreadlessJobs, ExecutorAgingBoundsStarvation)
{
    constexpr int kFlood = 40;
    for (const bool aging : {false, true}) {
        Executor executor(1, 3);
        if (aging)
            executor.setAgingSec(0.05);

        // Occupy the single worker so the victim cannot be picked
        // before the flood is queued behind it.
        auto blocker = executor.submit(1, [](std::size_t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
        });

        std::atomic<int> flood_done{0};
        std::atomic<int> flood_done_at_victim{-1};
        Executor::TaskSetOptions batch_options;
        batch_options.tier = 2;
        auto victim = executor.submit(
            1,
            [&](std::size_t) {
                flood_done_at_victim.store(flood_done.load());
            },
            batch_options);

        std::vector<std::shared_ptr<Executor::TaskSet>> flood;
        Executor::TaskSetOptions interactive_options;
        interactive_options.tier = 0;
        for (int i = 0; i < kFlood; ++i) {
            flood.push_back(executor.submit(
                1,
                [&](std::size_t) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                    flood_done.fetch_add(1);
                },
                interactive_options));
        }
        blocker->wait();
        victim->wait();
        for (const auto& set : flood)
            set->wait();

        if (aging) {
            EXPECT_LT(flood_done_at_victim.load(), kFlood - 5)
                << "an aged Batch set must be dispatched while the "
                   "Interactive flood is still draining";
        } else {
            EXPECT_EQ(flood_done_at_victim.load(), kFlood)
                << "strict tiers serve the whole flood first";
        }
    }
}

// Service-level bounded starvation: the admission queue applies the
// same aging knob, so a queued Batch job under an Interactive flood
// starts within ~2*aging_sec instead of last.
TEST(ThreadlessJobs, ServiceAgingAdmitsStarvedBatchJobs)
{
    constexpr int kFlood = 25;
    for (const bool aging : {false, true}) {
        ServiceConfig config;
        config.num_threads = 1;
        config.max_inflight_jobs = 1;
        config.aging_sec = aging ? 0.02 : 0.0;
        SchedulerService service{config};

        std::mutex order_mutex;
        std::vector<std::string> completion_order;
        const auto track = [&](ScheduleJob& job, std::string label) {
            job.onDone([&, label] {
                std::lock_guard<std::mutex> lock(order_mutex);
                completion_order.push_back(label);
            });
        };

        // Sample counts sized so one flood job runs ~8 ms: the Batch
        // job banks its full 2-tier aging credit (2 * 20 ms) while the
        // flood is still deep.
        std::vector<ScheduleJob> jobs;
        // Blocker holds the single inflight slot while the queue fills.
        jobs.push_back(service.submit(tinyRequest(200, 3000)).takeJob());
        track(jobs.back(), "blocker");
        jobs.push_back(
            service.submit(tinyRequest(201, 1500, JobPriority::Batch))
                .takeJob());
        track(jobs.back(), "batch");
        for (int i = 0; i < kFlood; ++i) {
            jobs.push_back(
                service
                    .submit(tinyRequest(210 + i, 1500,
                                        JobPriority::Interactive))
                    .takeJob());
            track(jobs.back(), "interactive");
        }
        for (ScheduleJob& job : jobs)
            job.wait();

        ASSERT_EQ(completion_order.size(), jobs.size());
        std::size_t batch_pos = completion_order.size();
        for (std::size_t i = 0; i < completion_order.size(); ++i) {
            if (completion_order[i] == "batch")
                batch_pos = i;
        }
        ASSERT_LT(batch_pos, completion_order.size());
        if (aging) {
            EXPECT_LT(batch_pos, completion_order.size() - 5)
                << "aging must pull the Batch job forward out of the "
                   "Interactive flood";
        } else {
            EXPECT_EQ(batch_pos, completion_order.size() - 1)
                << "strict tiers finish the Batch job last";
        }
    }
}

} // namespace
} // namespace cosa

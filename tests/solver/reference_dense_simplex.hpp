#pragma once

/**
 * @file
 * Test-only reference solver: the seed repo's dense-tableau
 * bounded-variable primal simplex, kept verbatim (minus the dual
 * machinery) as the ground truth the sparse revised core is checked
 * against. The sparse core iterates nonzeros in the same order this
 * dense loop visits them, so on a common problem the two must agree
 * not just on the objective but on the entire pivot sequence — the
 * equivalence suite asserts objectives and iteration counts match.
 *
 * One deliberate deviation from the seed: pivot selection uses the
 * same relative tie window (Simplex::kTieRelTol) as the production
 * solver. CoSA models carry many *exact* pivotal ties (symmetric
 * columns); resolving them by last-ulp rounding would bind the pivot
 * sequence to one basis representation's arithmetic, which is exactly
 * what the LU-vs-dense equivalence contract must not depend on. See
 * docs/solver-numerics.md.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "solver/types.hpp"

namespace cosa::solver::testing {

/** Dense column-major LP in computational standard form. */
struct DenseLp
{
    int num_rows = 0;
    int num_structural = 0;
    std::vector<double> cols; // num_rows * num_structural, column-major
    std::vector<double> rhs;
    std::vector<Sense> senses;
    std::vector<double> obj;
    std::vector<double> lb, ub;

    double&
    at(int row, int col)
    {
        return cols[static_cast<std::size_t>(col) * num_rows + row];
    }
};

enum class RefStatus { Optimal, Infeasible, Unbounded, IterLimit, Numerical };

/** The seed's dense bounded-variable primal simplex. */
class RefDenseSimplex
{
  public:
    explicit RefDenseSimplex(const DenseLp& prob)
    {
        m_ = prob.num_rows;
        num_structural_ = prob.num_structural;
        n_ = num_structural_ + m_;
        total_ = n_ + m_;

        cols_.assign(static_cast<std::size_t>(m_) * total_, 0.0);
        b_ = prob.rhs;
        c_.assign(total_, 0.0);
        lb_.assign(total_, 0.0);
        ub_.assign(total_, 0.0);

        for (int j = 0; j < num_structural_; ++j) {
            for (int i = 0; i < m_; ++i)
                cols_[static_cast<std::size_t>(j) * m_ + i] =
                    prob.cols[static_cast<std::size_t>(j) * m_ + i];
            c_[j] = prob.obj[j];
            lb_[j] = prob.lb[j];
            ub_[j] = prob.ub[j];
        }
        for (int r = 0; r < m_; ++r) {
            const int j = num_structural_ + r;
            cols_[static_cast<std::size_t>(j) * m_ + r] = 1.0;
            switch (prob.senses[r]) {
              case Sense::LessEqual:
                lb_[j] = 0.0;
                ub_[j] = kInf;
                break;
              case Sense::GreaterEqual:
                lb_[j] = -kInf;
                ub_[j] = 0.0;
                break;
              case Sense::Equal:
                lb_[j] = 0.0;
                ub_[j] = 0.0;
                break;
            }
        }
        for (int r = 0; r < m_; ++r)
            cols_[static_cast<std::size_t>(n_ + r) * m_ + r] = 1.0;

        basic_.assign(m_, -1);
        state_.assign(total_, kAtLower);
        binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
        xb_.assign(m_, 0.0);
        work_col_.assign(m_, 0.0);
        dual_y_.assign(m_, 0.0);
        redcost_.assign(total_, 0.0);
    }

    RefStatus
    solvePrimal()
    {
        setupInitialArtificialBasis();
        std::vector<double> phase1_costs(total_, 0.0);
        for (int j = n_; j < total_; ++j)
            phase1_costs[j] = 1.0;
        RefStatus st = primalLoop(phase1_costs.data(), true);
        if (st != RefStatus::Optimal)
            return st == RefStatus::Unbounded ? RefStatus::Numerical : st;
        if (objective_ > 1e-6)
            return RefStatus::Infeasible;
        for (int j = n_; j < total_; ++j)
            ub_[j] = 0.0;
        return primalLoop(c_.data(), false);
    }

    double objective() const { return objective_; }
    std::int64_t iterations() const { return iterations_; }

    std::vector<double>
    solution() const
    {
        std::vector<double> x(num_structural_, 0.0);
        for (int j = 0; j < num_structural_; ++j) {
            if (state_[j] != kBasic)
                x[j] = colValue(j);
        }
        for (int i = 0; i < m_; ++i) {
            if (basic_[i] < num_structural_)
                x[basic_[i]] = xb_[i];
        }
        return x;
    }

    static constexpr double kTol = 1e-7;
    static constexpr double kPivotTol = 1e-8;
    /** Mirror Simplex::kTieRelTol / kRatioTieTol (see there). */
    static constexpr double kTieRelTol = 1e-9;
    static constexpr double kRatioTieTol = 1e-9;

  private:
    enum NonbasicState : std::uint8_t { kAtLower = 0, kAtUpper = 1, kBasic = 2 };
    static constexpr int kRefactorInterval = 64;
    static constexpr int kStallLimit = 40;
    static constexpr std::int64_t kMaxIterations = 20000;

    int m_ = 0, n_ = 0, total_ = 0, num_structural_ = 0;
    std::vector<double> cols_, b_, c_, lb_, ub_;
    std::vector<std::int32_t> basic_;
    std::vector<std::uint8_t> state_;
    std::vector<double> binv_, xb_, work_col_, dual_y_, redcost_;
    double objective_ = 0.0;
    std::int64_t iterations_ = 0;

    double
    colValue(int j) const
    {
        return state_[j] == kAtUpper ? ub_[j] : lb_[j];
    }

    void
    computeXb()
    {
        std::vector<double> r = b_;
        for (int j = 0; j < total_; ++j) {
            if (state_[j] == kBasic)
                continue;
            const double v = colValue(j);
            if (v == 0.0)
                continue;
            const double* col = &cols_[static_cast<std::size_t>(j) * m_];
            for (int i = 0; i < m_; ++i)
                r[i] -= col[i] * v;
        }
        for (int i = 0; i < m_; ++i) {
            const double* row = &binv_[static_cast<std::size_t>(i) * m_];
            double acc = 0.0;
            for (int k = 0; k < m_; ++k)
                acc += row[k] * r[k];
            xb_[i] = acc;
        }
    }

    bool
    refactorize()
    {
        std::vector<double> mat(static_cast<std::size_t>(m_) * m_, 0.0);
        for (int col = 0; col < m_; ++col) {
            const int j = basic_[col];
            const double* src = &cols_[static_cast<std::size_t>(j) * m_];
            for (int i = 0; i < m_; ++i)
                mat[static_cast<std::size_t>(i) * m_ + col] = src[i];
        }
        std::fill(binv_.begin(), binv_.end(), 0.0);
        for (int i = 0; i < m_; ++i)
            binv_[static_cast<std::size_t>(i) * m_ + i] = 1.0;
        for (int col = 0; col < m_; ++col) {
            int piv = col;
            double best =
                std::abs(mat[static_cast<std::size_t>(col) * m_ + col]);
            for (int i = col + 1; i < m_; ++i) {
                const double v =
                    std::abs(mat[static_cast<std::size_t>(i) * m_ + col]);
                if (v > best) {
                    best = v;
                    piv = i;
                }
            }
            if (best < 1e-11)
                return false;
            if (piv != col) {
                for (int k = 0; k < m_; ++k) {
                    std::swap(mat[static_cast<std::size_t>(piv) * m_ + k],
                              mat[static_cast<std::size_t>(col) * m_ + k]);
                    std::swap(binv_[static_cast<std::size_t>(piv) * m_ + k],
                              binv_[static_cast<std::size_t>(col) * m_ + k]);
                }
            }
            const double inv_p =
                1.0 / mat[static_cast<std::size_t>(col) * m_ + col];
            for (int k = 0; k < m_; ++k) {
                mat[static_cast<std::size_t>(col) * m_ + k] *= inv_p;
                binv_[static_cast<std::size_t>(col) * m_ + k] *= inv_p;
            }
            for (int i = 0; i < m_; ++i) {
                if (i == col)
                    continue;
                const double f = mat[static_cast<std::size_t>(i) * m_ + col];
                if (f == 0.0)
                    continue;
                for (int k = 0; k < m_; ++k) {
                    mat[static_cast<std::size_t>(i) * m_ + k] -=
                        f * mat[static_cast<std::size_t>(col) * m_ + k];
                    binv_[static_cast<std::size_t>(i) * m_ + k] -=
                        f * binv_[static_cast<std::size_t>(col) * m_ + k];
                }
            }
        }
        return true;
    }

    void
    ftran(int j)
    {
        const double* col = &cols_[static_cast<std::size_t>(j) * m_];
        for (int i = 0; i < m_; ++i) {
            const double* row = &binv_[static_cast<std::size_t>(i) * m_];
            double acc = 0.0;
            for (int k = 0; k < m_; ++k)
                acc += row[k] * col[k];
            work_col_[i] = acc;
        }
    }

    void
    computeDuals(const double* costs)
    {
        for (int k = 0; k < m_; ++k) {
            double acc = 0.0;
            for (int i = 0; i < m_; ++i)
                acc += costs[basic_[i]] *
                       binv_[static_cast<std::size_t>(i) * m_ + k];
            dual_y_[k] = acc;
        }
    }

    void
    computeReducedCosts(const double* costs)
    {
        for (int j = 0; j < total_; ++j) {
            if (state_[j] == kBasic || ub_[j] - lb_[j] < kTol) {
                redcost_[j] = 0.0;
                continue;
            }
            const double* col = &cols_[static_cast<std::size_t>(j) * m_];
            double acc = 0.0;
            for (int k = 0; k < m_; ++k)
                acc += dual_y_[k] * col[k];
            redcost_[j] = costs[j] - acc;
        }
    }

    void
    pivot(int entering, int leaving_row, double entering_value)
    {
        const double alpha_r = work_col_[leaving_row];
        double* prow = &binv_[static_cast<std::size_t>(leaving_row) * m_];
        const double inv_p = 1.0 / alpha_r;
        for (int k = 0; k < m_; ++k)
            prow[k] *= inv_p;
        for (int i = 0; i < m_; ++i) {
            if (i == leaving_row)
                continue;
            const double f = work_col_[i];
            if (f == 0.0)
                continue;
            double* row = &binv_[static_cast<std::size_t>(i) * m_];
            for (int k = 0; k < m_; ++k)
                row[k] -= f * prow[k];
        }
        basic_[leaving_row] = entering;
        state_[entering] = kBasic;
        xb_[leaving_row] = entering_value;
    }

    double
    currentObjective(const double* costs) const
    {
        double obj = 0.0;
        for (int i = 0; i < m_; ++i)
            obj += costs[basic_[i]] * xb_[i];
        for (int j = 0; j < total_; ++j) {
            if (state_[j] != kBasic && costs[j] != 0.0)
                obj += costs[j] * colValue(j);
        }
        return obj;
    }

    void
    setupInitialArtificialBasis()
    {
        for (int j = 0; j < n_; ++j) {
            const bool lb_fin = std::isfinite(lb_[j]);
            const bool ub_fin = std::isfinite(ub_[j]);
            if (lb_fin && ub_fin)
                state_[j] = std::abs(lb_[j]) <= std::abs(ub_[j]) ? kAtLower
                                                                 : kAtUpper;
            else
                state_[j] = lb_fin ? kAtLower : kAtUpper;
        }
        std::vector<double> residual = b_;
        for (int j = 0; j < n_; ++j) {
            const double v = colValue(j);
            if (v == 0.0)
                continue;
            const double* col = &cols_[static_cast<std::size_t>(j) * m_];
            for (int i = 0; i < m_; ++i)
                residual[i] -= col[i] * v;
        }
        for (int r = 0; r < m_; ++r) {
            const int j = n_ + r;
            const double sign = residual[r] < 0.0 ? -1.0 : 1.0;
            cols_[static_cast<std::size_t>(j) * m_ + r] = sign;
            lb_[j] = 0.0;
            ub_[j] = kInf;
            basic_[r] = j;
            state_[j] = kBasic;
            xb_[r] = std::abs(residual[r]);
        }
        std::fill(binv_.begin(), binv_.end(), 0.0);
        for (int r = 0; r < m_; ++r)
            binv_[static_cast<std::size_t>(r) * m_ + r] =
                cols_[static_cast<std::size_t>(n_ + r) * m_ + r];
    }

    RefStatus
    primalLoop(const double* costs, bool phase1)
    {
        int since_refactor = 0;
        int stall = 0;
        bool bland = false;

        for (std::int64_t iter = 0; iter < kMaxIterations; ++iter) {
            ++iterations_;
            if (++since_refactor >= kRefactorInterval) {
                if (!refactorize())
                    return RefStatus::Numerical;
                computeXb();
                since_refactor = 0;
            }
            computeDuals(costs);
            computeReducedCosts(costs);

            int q = -1;
            double best_viol = kTol;
            for (int j = 0; j < total_; ++j) {
                if (state_[j] == kBasic || ub_[j] - lb_[j] < kTol)
                    continue;
                const double d = redcost_[j];
                double viol = 0.0;
                if (state_[j] == kAtLower && d < -kTol)
                    viol = -d;
                else if (state_[j] == kAtUpper && d > kTol)
                    viol = d;
                else
                    continue;
                if (bland) {
                    q = j;
                    break;
                }
                if (viol > best_viol * (1.0 + kTieRelTol)) {
                    best_viol = viol;
                    q = j;
                }
            }
            if (q < 0) {
                if (phase1 && !phase1Feasible())
                    return RefStatus::Infeasible;
                objective_ = currentObjective(costs);
                return RefStatus::Optimal;
            }

            ftran(q);
            const int dir = state_[q] == kAtLower ? 1 : -1;

            double t_best = ub_[q] - lb_[q];
            int leave = -1;
            double leave_alpha = 0.0;
            std::uint8_t leave_state = kAtLower;
            for (int i = 0; i < m_; ++i) {
                const double rate = -dir * work_col_[i];
                if (std::abs(rate) <= kPivotTol)
                    continue;
                const int bj = basic_[i];
                double t_i;
                std::uint8_t hit;
                if (rate < 0.0) {
                    if (!std::isfinite(lb_[bj]))
                        continue;
                    t_i = (xb_[i] - lb_[bj]) / (-rate);
                    hit = kAtLower;
                } else {
                    if (!std::isfinite(ub_[bj]))
                        continue;
                    t_i = (ub_[bj] - xb_[i]) / rate;
                    hit = kAtUpper;
                }
                t_i = std::max(t_i, 0.0);
                const bool better =
                    t_i < t_best - kRatioTieTol ||
                    (t_i < t_best + kRatioTieTol &&
                     std::abs(work_col_[i]) >
                         std::abs(leave_alpha) * (1.0 + kTieRelTol));
                if (better) {
                    t_best = t_i;
                    leave = i;
                    leave_alpha = work_col_[i];
                    leave_state = hit;
                }
            }
            if (!std::isfinite(t_best))
                return phase1 ? RefStatus::Numerical : RefStatus::Unbounded;

            if (t_best <= 1e-11)
                ++stall;
            else
                stall = 0;
            if (stall > kStallLimit)
                bland = true;

            if (leave < 0) {
                for (int i = 0; i < m_; ++i)
                    xb_[i] += -dir * work_col_[i] * t_best;
                state_[q] = state_[q] == kAtLower ? kAtUpper : kAtLower;
                continue;
            }

            const double entering_value = colValue(q) + dir * t_best;
            for (int i = 0; i < m_; ++i) {
                if (i != leave)
                    xb_[i] += -dir * work_col_[i] * t_best;
            }
            const int leaving_var = basic_[leave];
            pivot(q, leave, entering_value);
            state_[leaving_var] = leave_state;
        }
        return RefStatus::IterLimit;
    }

    bool
    phase1Feasible() const
    {
        double infeas = 0.0;
        for (int i = 0; i < m_; ++i) {
            if (basic_[i] >= n_)
                infeas += std::abs(xb_[i]);
        }
        for (int j = n_; j < total_; ++j) {
            if (state_[j] == kAtUpper && std::isfinite(ub_[j]))
                infeas += std::abs(ub_[j]);
        }
        return infeas < 1e-6;
    }
};

} // namespace cosa::solver::testing

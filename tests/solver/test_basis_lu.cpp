#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arch/arch_spec.hpp"
#include "common/rng.hpp"
#include "cosa/formulation.hpp"
#include "cosa/scheduler.hpp"
#include "problem/workloads.hpp"
#include "solver/basis_lu.hpp"
#include "solver/simplex.hpp"

namespace cosa::solver {
namespace {

using Entry = BasisLu::Entry;

/** Dense Gaussian-elimination solve of A x = b (test oracle). */
std::vector<double>
denseSolve(int m, const std::vector<std::vector<Entry>>& cols,
           std::vector<double> b)
{
    std::vector<double> a(static_cast<std::size_t>(m) * m, 0.0);
    for (int j = 0; j < m; ++j) {
        for (const Entry& e : cols[static_cast<std::size_t>(j)])
            a[static_cast<std::size_t>(e.index) * m + j] = e.value;
    }
    for (int col = 0; col < m; ++col) {
        int piv = col;
        for (int i = col + 1; i < m; ++i) {
            if (std::abs(a[static_cast<std::size_t>(i) * m + col]) >
                std::abs(a[static_cast<std::size_t>(piv) * m + col]))
                piv = i;
        }
        for (int k = 0; k < m; ++k)
            std::swap(a[static_cast<std::size_t>(piv) * m + k],
                      a[static_cast<std::size_t>(col) * m + k]);
        std::swap(b[static_cast<std::size_t>(piv)],
                  b[static_cast<std::size_t>(col)]);
        const double inv = 1.0 / a[static_cast<std::size_t>(col) * m + col];
        for (int i = col + 1; i < m; ++i) {
            const double f =
                a[static_cast<std::size_t>(i) * m + col] * inv;
            if (f == 0.0)
                continue;
            for (int k = col; k < m; ++k)
                a[static_cast<std::size_t>(i) * m + k] -=
                    f * a[static_cast<std::size_t>(col) * m + k];
            b[static_cast<std::size_t>(i)] -=
                f * b[static_cast<std::size_t>(col)];
        }
    }
    std::vector<double> x(static_cast<std::size_t>(m), 0.0);
    for (int i = m - 1; i >= 0; --i) {
        double acc = b[static_cast<std::size_t>(i)];
        for (int k = i + 1; k < m; ++k)
            acc -= a[static_cast<std::size_t>(i) * m + k] *
                   x[static_cast<std::size_t>(k)];
        x[static_cast<std::size_t>(i)] =
            acc / a[static_cast<std::size_t>(i) * m + i];
    }
    return x;
}

/** Random sparse columns with a guaranteed-strong diagonal. */
std::vector<std::vector<Entry>>
randomBasis(Rng& rng, int m, double density)
{
    std::vector<std::vector<Entry>> cols(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j) {
        for (int i = 0; i < m; ++i) {
            if (i == j) {
                cols[static_cast<std::size_t>(j)].push_back(
                    {i, 2.0 + 4.0 * rng.nextDouble()});
            } else if (rng.nextDouble() < density) {
                cols[static_cast<std::size_t>(j)].push_back(
                    {i, rng.nextDouble() * 2.0 - 1.0});
            }
        }
    }
    return cols;
}

TEST(BasisLu, FtranBtranMatchDenseSolves)
{
    Rng rng(7);
    for (int m : {1, 2, 5, 17, 60}) {
        const auto cols = randomBasis(rng, m, 0.15);
        BasisLu lu;
        ASSERT_TRUE(lu.factorize(m, cols)) << "m=" << m;

        std::vector<double> v(static_cast<std::size_t>(m));
        for (double& x : v)
            x = rng.nextDouble() * 10.0 - 5.0;

        std::vector<double> x = v;
        lu.ftran(x.data());
        const auto x_ref = denseSolve(m, cols, v);
        for (int i = 0; i < m; ++i)
            EXPECT_NEAR(x[i], x_ref[i], 1e-9) << "ftran m=" << m;

        // btran solves the transposed system: build B^T columns.
        std::vector<std::vector<Entry>> tcols(static_cast<std::size_t>(m));
        for (int j = 0; j < m; ++j) {
            for (const Entry& e : cols[static_cast<std::size_t>(j)])
                tcols[static_cast<std::size_t>(e.index)].push_back(
                    {j, e.value});
        }
        std::vector<double> y = v;
        lu.btran(y.data());
        const auto y_ref = denseSolve(m, tcols, v);
        for (int i = 0; i < m; ++i)
            EXPECT_NEAR(y[i], y_ref[i], 1e-9) << "btran m=" << m;
    }
}

TEST(BasisLu, EtaUpdatesMatchFreshFactorization)
{
    Rng rng(11);
    const int m = 40;
    auto cols = randomBasis(rng, m, 0.2);
    BasisLu lu;
    ASSERT_TRUE(lu.factorize(m, cols));

    // Replace 12 basis columns one by one through the product form.
    for (int round = 0; round < 12; ++round) {
        const int p = static_cast<int>(rng.nextDouble() * m) % m;
        std::vector<Entry> newcol;
        for (int i = 0; i < m; ++i) {
            if (i == p)
                newcol.push_back({i, 3.0 + rng.nextDouble()});
            else if (rng.nextDouble() < 0.2)
                newcol.push_back({i, rng.nextDouble() * 2.0 - 1.0});
        }
        // w = B^-1 a_new, exactly what the simplex ratio test computes.
        std::vector<double> w(static_cast<std::size_t>(m), 0.0);
        for (const Entry& e : newcol)
            w[e.index] = e.value;
        lu.ftran(w.data());
        ASSERT_GT(std::abs(w[p]), 1e-8);
        lu.update(p, w.data());
        cols[static_cast<std::size_t>(p)] = newcol;
    }
    EXPECT_EQ(lu.stats().eta_updates, 12);

    std::vector<double> v(static_cast<std::size_t>(m));
    for (double& x : v)
        x = rng.nextDouble() * 4.0 - 2.0;
    std::vector<double> via_etas = v;
    lu.ftran(via_etas.data());

    BasisLu fresh;
    ASSERT_TRUE(fresh.factorize(m, cols));
    std::vector<double> via_fresh = v;
    fresh.ftran(via_fresh.data());
    for (int i = 0; i < m; ++i)
        EXPECT_NEAR(via_etas[i], via_fresh[i], 1e-8);
}

TEST(BasisLu, GrowthToleranceTriggersRefactorization)
{
    // Identity basis, then an update whose eta pivot is tiny against
    // the spike: |w_p| / ||w||_inf = 1e-9 < kEtaStabilityTol. The
    // update is absorbed (the math stays exact) but the representation
    // must request a refactorization at the next loop boundary.
    const int m = 4;
    std::vector<std::vector<Entry>> cols(m);
    for (int j = 0; j < m; ++j)
        cols[static_cast<std::size_t>(j)].push_back({j, 1.0});
    BasisLu lu;
    ASSERT_TRUE(lu.factorize(m, cols));
    EXPECT_FALSE(lu.needsRefactorization());

    std::vector<double> w = {1e-3, 1e6, 0.0, 0.0};
    lu.update(0, w.data());
    EXPECT_TRUE(lu.needsRefactorization());
    EXPECT_EQ(lu.stats().unstable_updates, 1);

    // Refactorizing (here: back to the identity) clears the request.
    ASSERT_TRUE(lu.factorize(m, cols));
    EXPECT_FALSE(lu.needsRefactorization());

    // A well-conditioned update does not trip it.
    std::vector<double> ok = {2.0, 1.0, 0.0, -1.0};
    lu.update(0, ok.data());
    EXPECT_FALSE(lu.needsRefactorization());
    EXPECT_EQ(lu.stats().unstable_updates, 1);
}

TEST(BasisLu, EtaFillBoundTriggersRefactorization)
{
    // Dense spikes on a small identity basis: the eta file's nonzeros
    // quickly exceed the factor fill bound.
    const int m = 6;
    std::vector<std::vector<Entry>> cols(m);
    for (int j = 0; j < m; ++j)
        cols[static_cast<std::size_t>(j)].push_back({j, 1.0});
    BasisLu lu;
    ASSERT_TRUE(lu.factorize(m, cols));
    int updates = 0;
    while (!lu.needsRefactorization() && updates < 1000) {
        std::vector<double> w(static_cast<std::size_t>(m), 0.5);
        w[static_cast<std::size_t>(updates % m)] = 2.0;
        lu.update(updates % m, w.data());
        ++updates;
    }
    EXPECT_TRUE(lu.needsRefactorization());
    EXPECT_EQ(lu.stats().unstable_updates, 0);
    EXPECT_GE(lu.stats().fill_refactor_requests, 1);
    EXPECT_LT(updates, 1000);
}

TEST(BasisLu, SingularBasisRejected)
{
    // Structurally singular: an empty column.
    {
        std::vector<std::vector<Entry>> cols(3);
        cols[0] = {{0, 1.0}};
        cols[2] = {{2, 1.0}};
        BasisLu lu;
        EXPECT_FALSE(lu.factorize(3, cols));
        EXPECT_FALSE(lu.factorized());
    }
    // Numerically singular: two identical columns.
    {
        std::vector<std::vector<Entry>> cols(3);
        cols[0] = {{0, 1.0}, {1, 2.0}};
        cols[1] = {{0, 1.0}, {1, 2.0}};
        cols[2] = {{2, 1.0}};
        BasisLu lu;
        EXPECT_FALSE(lu.factorize(3, cols));
    }
}

/** A tiny LP whose loaded warm basis is singular (duplicate variable
 *  basic in two rows) must be rejected as Numerical, not crash. */
TEST(BasisLu, SimplexRejectsSingularWarmBasis)
{
    for (const BasisMode mode : {BasisMode::Dense, BasisMode::Lu}) {
        LpProblem lp;
        lp.num_rows = 2;
        lp.num_structural = 2;
        lp.matrix = SparseMatrix(
            2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}});
        lp.rhs = {4.0, 6.0};
        lp.senses = {Sense::LessEqual, Sense::LessEqual};
        lp.obj = {-1.0, -1.0};
        lp.lb = {0.0, 0.0};
        lp.ub = {10.0, 10.0};

        Simplex splx(lp, mode);
        ASSERT_EQ(splx.solvePrimal(), LpStatus::Optimal);
        Basis bad = splx.saveBasis();
        // Corrupt the snapshot: the same column basic in every row.
        for (auto& b : bad.basic)
            b = bad.basic[0];
        Simplex warm(lp, mode);
        EXPECT_EQ(warm.solveDual(bad), LpStatus::Numerical)
            << "mode=" << static_cast<int>(mode);
    }
}

/**
 * Beale's classic cycling LP: Dantzig pricing stalls at a degenerate
 * vertex until the Bland fallback engages. Both basis representations
 * must walk the identical pivot sequence through the stall, the
 * fallback and the finish.
 */
TEST(BasisLu, BlandFallbackPivotSequenceEquality)
{
    LpProblem lp;
    lp.num_rows = 3;
    lp.num_structural = 4;
    lp.matrix = SparseMatrix(3, 4,
                             {{0, 0, 0.25},
                              {0, 1, -60.0},
                              {0, 2, -0.04},
                              {0, 3, 9.0},
                              {1, 0, 0.5},
                              {1, 1, -90.0},
                              {1, 2, -0.02},
                              {1, 3, 3.0},
                              {2, 2, 1.0}});
    lp.rhs = {0.0, 0.0, 1.0};
    lp.senses = {Sense::LessEqual, Sense::LessEqual, Sense::LessEqual};
    lp.obj = {-0.75, 150.0, -0.02, 6.0};
    lp.lb = {0.0, 0.0, 0.0, 0.0};
    lp.ub = {1e6, 1e6, 1e6, 1e6};

    Simplex dense(lp, BasisMode::Dense);
    Simplex sparse(lp, BasisMode::Lu);
    ASSERT_EQ(dense.solvePrimal(), LpStatus::Optimal);
    ASSERT_EQ(sparse.solvePrimal(), LpStatus::Optimal);
    EXPECT_NEAR(dense.objective(), -0.05, 1e-9);
    EXPECT_NEAR(sparse.objective(), dense.objective(), 1e-9);
    EXPECT_EQ(sparse.iterations(), dense.iterations());
    EXPECT_EQ(sparse.blandActivations(), dense.blandActivations());
}

/** Mirror MipSolver::buildLp without presolve: raw standard form. */
LpProblem
standardForm(const Model& model)
{
    LpProblem lp;
    lp.num_rows = model.numConstrs();
    lp.num_structural = model.numVars();
    std::vector<Triplet> triplets;
    for (int r = 0; r < lp.num_rows; ++r) {
        for (const auto& [col, coef] : model.rowTerms(r))
            triplets.push_back({r, col, coef});
        lp.rhs.push_back(model.rowRhs(r));
        lp.senses.push_back(model.rowSense(r));
    }
    lp.matrix = SparseMatrix(lp.num_rows, lp.num_structural, triplets);
    for (int j = 0; j < lp.num_structural; ++j) {
        lp.obj.push_back(model.objCoef(Var{j}));
        lp.lb.push_back(model.lowerBound(Var{j}));
        lp.ub.push_back(model.upperBound(Var{j}));
    }
    return lp;
}

/**
 * The tentpole acceptance claim: on every unique ResNet-50 layer and
 * two architectures, LU mode performs the dense-inverse reference's
 * exact pivot sequence and lands on its objective. (The sibling
 * sparse-equivalence suite ties the same sequence back to the seed
 * dense tableau, so all three representations agree.)
 */
TEST(BasisLu, DenseVsLuPivotSequenceEqualOnResNet50)
{
    const Workload net = workloads::resNet50();
    const ArchSpec archs[2] = {ArchSpec::simbaBaseline(),
                               ArchSpec::simba8x8()};
    int compared = 0;
    for (const ArchSpec& arch : archs) {
        for (const LayerSpec& layer : net.layers) {
            cosa::CosaFormulation formulation(layer, arch,
                                              cosa::CosaConfig{});
            const LpProblem lp = standardForm(formulation.model());
            Simplex dense(lp, BasisMode::Dense);
            Simplex sparse(lp, BasisMode::Lu);
            const LpStatus d_st = dense.solvePrimal();
            const LpStatus s_st = sparse.solvePrimal();
            ASSERT_EQ(d_st, LpStatus::Optimal)
                << layer.name << " on " << arch.name;
            ASSERT_EQ(s_st, LpStatus::Optimal)
                << layer.name << " on " << arch.name;
            EXPECT_NEAR(sparse.objective(), dense.objective(), 1e-6)
                << layer.name << " on " << arch.name;
            EXPECT_EQ(sparse.iterations(), dense.iterations())
                << layer.name << " on " << arch.name
                << ": pivot sequences diverged";
            // LU mode must actually be living off eta updates, not
            // silently refactorizing every pivot.
            EXPECT_GT(sparse.basisStats().eta_updates, 0) << layer.name;
            ++compared;
        }
    }
    EXPECT_EQ(compared, 46);
}

/**
 * The schedule-cache contract behind MipParams::basis_mode not keying
 * the cache: full branch-and-bound CoSA solves return bit-identical
 * schedules and search statistics in both modes, including under a
 * deterministic work budget (identical budget cutoff points require
 * the identical pivot sequence).
 */
TEST(BasisLu, CosaMipSolvesIdenticalAcrossBasisModes)
{
    const char* labels[] = {"3_14_256_256_2", "1_1_64_32_1",
                            "1_1_2048_1000_1"};
    const ArchSpec arch = ArchSpec::simbaBaseline();
    for (const char* label : labels) {
        const LayerSpec layer = LayerSpec::fromLabel(label);
        cosa::SearchResult results[2];
        for (int i = 0; i < 2; ++i) {
            cosa::CosaConfig config;
            config.mip.work_limit = 4000;
            config.mip.basis_mode =
                i == 0 ? BasisMode::Dense : BasisMode::Lu;
            results[i] = cosa::CosaScheduler(config).schedule(layer, arch);
            ASSERT_TRUE(results[i].found) << label;
        }
        EXPECT_EQ(results[0].eval.cycles, results[1].eval.cycles) << label;
        EXPECT_EQ(results[0].mapping, results[1].mapping) << label;
        EXPECT_EQ(results[0].stats.mip_nodes, results[1].stats.mip_nodes)
            << label;
        EXPECT_EQ(results[0].stats.lp_iterations,
                  results[1].stats.lp_iterations)
            << label;
    }
}

/** Dual warm re-solves (the branch-and-bound workhorse) walk the same
 *  pivots in both modes across randomized bound changes. */
TEST(BasisLu, DualWarmStartsEqualAcrossBasisModes)
{
    Rng rng(23);
    const Workload net = workloads::resNet50();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    const LayerSpec& layer = net.layers[4];
    cosa::CosaFormulation formulation(layer, arch, cosa::CosaConfig{});
    const LpProblem lp = standardForm(formulation.model());

    Simplex dense(lp, BasisMode::Dense);
    Simplex sparse(lp, BasisMode::Lu);
    ASSERT_EQ(dense.solvePrimal(), LpStatus::Optimal);
    ASSERT_EQ(sparse.solvePrimal(), LpStatus::Optimal);
    const Basis dense_basis = dense.saveBasis();
    const Basis sparse_basis = sparse.saveBasis();

    for (int round = 0; round < 8; ++round) {
        // Branch-like bound change: fix a random structural column
        // near its relaxation value.
        const int j = static_cast<int>(rng.nextDouble() * lp.num_structural) %
                      lp.num_structural;
        const double fix =
            std::floor(std::max(0.0, dense.varLb(j)) + 0.5);
        dense.setVarBounds(j, fix, fix);
        sparse.setVarBounds(j, fix, fix);
        const LpStatus d_st = dense.solveDual(dense_basis);
        const LpStatus s_st = sparse.solveDual(sparse_basis);
        EXPECT_EQ(d_st, s_st) << "round " << round;
        if (d_st == LpStatus::Optimal && s_st == LpStatus::Optimal) {
            EXPECT_NEAR(sparse.objective(), dense.objective(), 1e-6)
                << "round " << round;
        }
        EXPECT_EQ(sparse.iterations(), dense.iterations())
            << "round " << round << ": dual pivot sequences diverged";
    }
}

} // namespace
} // namespace cosa::solver

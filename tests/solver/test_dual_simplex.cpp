#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "solver/simplex.hpp"

namespace cosa::solver {
namespace {

/**
 * Build a random feasible bounded LP. A random interior point x* is
 * drawn first and every row is anchored to it: <= rows get rhs above
 * the row value at x*, >= rows below, == rows exactly at it — so the
 * problem is always feasible (at x*) regardless of senses. This mirrors
 * the structure of CoSA models (mixed senses, assignment equalities).
 */
LpProblem
randomLp(Rng& rng, int n, int m)
{
    LpProblem lp;
    lp.num_rows = m;
    lp.num_structural = n;
    lp.rhs.assign(static_cast<std::size_t>(m), 0.0);
    lp.senses.assign(static_cast<std::size_t>(m), Sense::LessEqual);
    lp.obj.assign(static_cast<std::size_t>(n), 0.0);
    lp.lb.assign(static_cast<std::size_t>(n), 0.0);
    lp.ub.assign(static_cast<std::size_t>(n), 1.0);
    std::vector<double> anchor(static_cast<std::size_t>(n), 0.0);
    for (int j = 0; j < n; ++j) {
        lp.obj[j] = rng.nextDouble() * 4.0 - 2.0;
        if (rng.nextDouble() < 0.3)
            lp.lb[j] = -1.0; // some negative lower bounds
        anchor[static_cast<std::size_t>(j)] =
            lp.lb[j] + (lp.ub[j] - lp.lb[j]) * rng.nextDouble();
    }
    std::vector<Triplet> triplets;
    for (int r = 0; r < m; ++r) {
        double row_at_anchor = 0.0;
        for (int j = 0; j < n; ++j) {
            const double a = rng.nextDouble() * 2.0 - 1.0;
            triplets.push_back({r, j, a});
            row_at_anchor += a * anchor[static_cast<std::size_t>(j)];
        }
        const double roll = rng.nextDouble();
        if (roll < 0.5) {
            lp.senses[r] = Sense::LessEqual;
            lp.rhs[r] = row_at_anchor + rng.nextDouble() + 0.05;
        } else if (roll < 0.8) {
            lp.senses[r] = Sense::GreaterEqual;
            lp.rhs[r] = row_at_anchor - rng.nextDouble() - 0.05;
        } else {
            lp.senses[r] = Sense::Equal;
            lp.rhs[r] = row_at_anchor;
        }
    }
    lp.matrix = SparseMatrix(m, n, triplets);
    return lp;
}

/**
 * Property: after a bound change, the warm-started dual simplex must
 * agree with a cold primal solve (same objective, or both infeasible).
 */
class DualSimplexProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(DualSimplexProperty, AgreesWithColdPrimalAfterBoundChange)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 11);
    const int n = 4 + static_cast<int>(rng.nextBelow(8));
    const int m = 3 + static_cast<int>(rng.nextBelow(6));
    const LpProblem lp = randomLp(rng, n, m);

    Simplex warm(lp);
    ASSERT_EQ(warm.solvePrimal(), LpStatus::Optimal);
    const Basis basis = warm.saveBasis();

    // Apply a sequence of bound tightenings, warm-resolving each time.
    Basis current = basis;
    for (int step = 0; step < 4; ++step) {
        const int j = static_cast<int>(rng.nextBelow(
            static_cast<std::uint64_t>(n)));
        double new_lb = warm.varLb(j);
        double new_ub = warm.varUb(j);
        if (rng.nextDouble() < 0.5) {
            new_lb = new_ub = (rng.nextDouble() < 0.5) ? 0.0 : 1.0; // fix
        } else if (rng.nextDouble() < 0.5) {
            new_ub = new_lb + (new_ub - new_lb) * 0.5;
        } else {
            new_lb = new_lb + (new_ub - new_lb) * 0.5;
        }
        warm.setVarBounds(j, new_lb, new_ub);

        const LpStatus warm_status = warm.solveDual(current);

        // Reference: cold solve with the same accumulated bounds.
        Simplex cold(lp);
        for (int col = 0; col < n; ++col)
            cold.setVarBounds(col, warm.varLb(col), warm.varUb(col));
        const LpStatus cold_status = cold.solvePrimal();

        if (cold_status == LpStatus::Infeasible) {
            EXPECT_EQ(warm_status, LpStatus::Infeasible)
                << "step " << step << ": cold infeasible but warm "
                << static_cast<int>(warm_status);
            return; // rest of the sequence is moot
        }
        ASSERT_EQ(cold_status, LpStatus::Optimal);
        ASSERT_EQ(warm_status, LpStatus::Optimal)
            << "step " << step << ": warm dual failed where cold succeeded";
        EXPECT_NEAR(warm.objective(), cold.objective(), 1e-6)
            << "step " << step;
        current = warm.saveBasis();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualSimplexProperty,
                         ::testing::Range(0, 60));

} // namespace
} // namespace cosa::solver

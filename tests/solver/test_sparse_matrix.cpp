#include <gtest/gtest.h>

#include "solver/sparse_matrix.hpp"

namespace cosa::solver {
namespace {

TEST(SparseMatrix, BuildsCscAndCsrViews)
{
    // 3x4:  [ 1 0 2 0
    //         0 3 0 0
    //         4 0 5 6 ]
    const std::vector<Triplet> entries = {
        {0, 0, 1.0}, {2, 0, 4.0}, {1, 1, 3.0},
        {0, 2, 2.0}, {2, 2, 5.0}, {2, 3, 6.0},
    };
    const SparseMatrix m(3, 4, entries);
    EXPECT_EQ(m.numRows(), 3);
    EXPECT_EQ(m.numCols(), 4);
    EXPECT_EQ(m.numNonZeros(), 6);
    EXPECT_NEAR(m.density(), 0.5, 1e-12);

    ASSERT_EQ(m.column(0).size(), 2u);
    EXPECT_EQ(m.column(0)[0].index, 0);
    EXPECT_EQ(m.column(0)[1].index, 2);
    EXPECT_EQ(m.column(1).size(), 1u);
    EXPECT_EQ(m.column(3)[0].value, 6.0);

    ASSERT_EQ(m.row(2).size(), 3u);
    EXPECT_EQ(m.row(2)[0].index, 0); // columns ascending within a row
    EXPECT_EQ(m.row(2)[1].index, 2);
    EXPECT_EQ(m.row(2)[2].index, 3);
    EXPECT_EQ(m.row(1).size(), 1u);

    EXPECT_EQ(m.at(0, 0), 1.0);
    EXPECT_EQ(m.at(1, 0), 0.0);
    EXPECT_EQ(m.at(2, 3), 6.0);
}

TEST(SparseMatrix, UnorderedTripletsSortAndDuplicatesFold)
{
    // Rows arrive out of order within a column; (1,0) arrives twice.
    const std::vector<Triplet> entries = {
        {2, 0, 1.0}, {0, 0, 2.0}, {1, 0, 3.0}, {1, 0, 4.0},
    };
    const SparseMatrix m(3, 1, entries);
    ASSERT_EQ(m.column(0).size(), 3u);
    EXPECT_EQ(m.column(0)[0].index, 0);
    EXPECT_EQ(m.column(0)[1].index, 1);
    EXPECT_EQ(m.column(0)[2].index, 2);
    EXPECT_EQ(m.at(1, 0), 7.0); // 3 + 4 folded
    // The CSR view folds identically.
    ASSERT_EQ(m.row(1).size(), 1u);
    EXPECT_EQ(m.row(1)[0].value, 7.0);
}

TEST(SparseMatrix, EmptyMatrixAndEmptyColumns)
{
    const SparseMatrix empty(0, 0, {});
    EXPECT_EQ(empty.numNonZeros(), 0);
    EXPECT_EQ(empty.density(), 0.0);

    const SparseMatrix gaps(2, 3, {{1, 1, 5.0}});
    EXPECT_EQ(gaps.column(0).size(), 0u);
    EXPECT_EQ(gaps.column(2).size(), 0u);
    EXPECT_EQ(gaps.row(0).size(), 0u);
    ASSERT_EQ(gaps.column(1).size(), 1u);
    EXPECT_EQ(gaps.at(1, 1), 5.0);
}

} // namespace
} // namespace cosa::solver

#include <gtest/gtest.h>

#include "solver/lin_expr.hpp"
#include "solver/model.hpp"

namespace cosa::solver {
namespace {

TEST(LinExpr, BuildsTermsAndConstant)
{
    Var x{0}, y{1};
    LinExpr e = 2.0 * x + y - 3.0;
    EXPECT_EQ(e.terms().size(), 2u);
    EXPECT_DOUBLE_EQ(e.constant(), -3.0);
}

TEST(LinExpr, ScalarMultiplication)
{
    Var x{0};
    LinExpr e = (x + 1.0) * 4.0;
    ASSERT_EQ(e.terms().size(), 1u);
    EXPECT_DOUBLE_EQ(e.terms()[0].coef, 4.0);
    EXPECT_DOUBLE_EQ(e.constant(), 4.0);
}

TEST(LinExpr, ZeroCoefficientsDropped)
{
    Var x{0};
    LinExpr e;
    e.addTerm(x, 0.0);
    EXPECT_TRUE(e.terms().empty());
}

TEST(LinExpr, EvalExpr)
{
    Model m;
    Var x = m.addContinuous(0, 10, "x");
    Var y = m.addContinuous(0, 10, "y");
    LinExpr e = 2.0 * x - 0.5 * y + 7.0;
    std::vector<double> vals{3.0, 4.0};
    EXPECT_DOUBLE_EQ(Model::evalExpr(e, vals), 6.0 - 2.0 + 7.0);
}

TEST(Model, DuplicateTermsFoldInConstraints)
{
    Model m;
    Var x = m.addContinuous(0, 10, "x");
    LinExpr e;
    e.addTerm(x, 1.0);
    e.addTerm(x, 2.0); // folds to 3x
    m.addConstr(e, Sense::LessEqual, 6.0);
    m.setObjective(LinExpr(x), ObjSense::Maximize);
    auto r = m.optimize();
    ASSERT_TRUE(r.hasSolution());
    EXPECT_NEAR(r.values[x.index], 2.0, 1e-6);
}

TEST(Model, BinaryBoundsClamped)
{
    Model m;
    Var b = m.addVar(-5.0, 5.0, VarType::Binary, "b");
    EXPECT_DOUBLE_EQ(m.lowerBound(b), 0.0);
    EXPECT_DOUBLE_EQ(m.upperBound(b), 1.0);
}

} // namespace
} // namespace cosa::solver

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "solver/model.hpp"

namespace cosa::solver {
namespace {

/** Classic 2-variable LP with a known optimum at a vertex. */
TEST(Lp, SimpleMaximization)
{
    // max 3x + 4y s.t. x + 2y <= 14, 3x - y >= 0, x - y <= 2, x,y >= 0
    // Optimum at (6, 4) with objective 34.
    Model m;
    Var x = m.addContinuous(0, kInf, "x");
    Var y = m.addContinuous(0, kInf, "y");
    m.addConstr(x + 2.0 * y, Sense::LessEqual, 14.0);
    m.addConstr(3.0 * x - y, Sense::GreaterEqual, 0.0);
    m.addConstr(x - y, Sense::LessEqual, 2.0);
    m.setObjective(3.0 * x + 4.0 * y, ObjSense::Maximize);
    auto r = m.optimizeRelaxation();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 34.0, 1e-6);
    EXPECT_NEAR(r.values[x.index], 6.0, 1e-6);
    EXPECT_NEAR(r.values[y.index], 4.0, 1e-6);
}

TEST(Lp, Minimization)
{
    // min x + y s.t. x + 2y >= 4, 3x + y >= 6, bounds [0, 10]
    // Optimum at intersection: x = 8/5, y = 6/5, obj = 14/5.
    Model m;
    Var x = m.addContinuous(0, 10, "x");
    Var y = m.addContinuous(0, 10, "y");
    m.addConstr(x + 2.0 * y, Sense::GreaterEqual, 4.0);
    m.addConstr(3.0 * x + y, Sense::GreaterEqual, 6.0);
    m.setObjective(x + y, ObjSense::Minimize);
    auto r = m.optimizeRelaxation();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 14.0 / 5.0, 1e-6);
}

TEST(Lp, EqualityConstraint)
{
    // min x + 2y s.t. x + y == 5, x <= 3 -> x=3, y=2, obj=7.
    Model m;
    Var x = m.addContinuous(0, 3, "x");
    Var y = m.addContinuous(0, kInf, "y");
    m.addConstr(x + y, Sense::Equal, 5.0);
    m.setObjective(x + 2.0 * y, ObjSense::Minimize);
    auto r = m.optimizeRelaxation();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 7.0, 1e-6);
    EXPECT_NEAR(r.values[x.index], 3.0, 1e-6);
}

TEST(Lp, InfeasibleDetected)
{
    Model m;
    Var x = m.addContinuous(0, 1, "x");
    m.addConstr(LinExpr(x), Sense::GreaterEqual, 2.0);
    auto r = m.optimizeRelaxation();
    EXPECT_EQ(r.status, Status::Infeasible);
}

TEST(Lp, ContradictoryRowsInfeasible)
{
    Model m;
    Var x = m.addContinuous(0, 10, "x");
    Var y = m.addContinuous(0, 10, "y");
    m.addConstr(x + y, Sense::GreaterEqual, 8.0);
    m.addConstr(x + y, Sense::LessEqual, 3.0);
    auto r = m.optimizeRelaxation();
    EXPECT_EQ(r.status, Status::Infeasible);
}

TEST(Lp, UnboundedDetected)
{
    Model m;
    Var x = m.addContinuous(0, kInf, "x");
    m.setObjective(LinExpr(x), ObjSense::Maximize);
    auto r = m.optimizeRelaxation();
    EXPECT_EQ(r.status, Status::Unbounded);
}

TEST(Lp, VariableBoundsOnlyNoConstraints)
{
    Model m;
    Var x = m.addContinuous(-3, 7, "x");
    m.setObjective(LinExpr(x), ObjSense::Minimize);
    auto r = m.optimizeRelaxation();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, -3.0, 1e-9);
}

TEST(Lp, DegenerateProblemTerminates)
{
    // Many redundant constraints through the same vertex; exercises the
    // anti-cycling fallback.
    Model m;
    Var x = m.addContinuous(0, 10, "x");
    Var y = m.addContinuous(0, 10, "y");
    for (int k = 1; k <= 12; ++k)
        m.addConstr(static_cast<double>(k) * x + static_cast<double>(k) * y,
                    Sense::LessEqual, 10.0 * k);
    m.setObjective(x + y, ObjSense::Maximize);
    auto r = m.optimizeRelaxation();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 10.0, 1e-6);
}

TEST(Lp, NegativeLowerBounds)
{
    // min x + y with x in [-5, -1], y in [-2, 3], x + y >= -4.
    Model m;
    Var x = m.addContinuous(-5, -1, "x");
    Var y = m.addContinuous(-2, 3, "y");
    m.addConstr(x + y, Sense::GreaterEqual, -4.0);
    m.setObjective(x + y, ObjSense::Minimize);
    auto r = m.optimizeRelaxation();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, -4.0, 1e-6);
}

/**
 * Randomized property test: LP optimum of min c.x over a randomly
 * generated feasible box-plus-rows problem must (a) satisfy every
 * constraint and (b) never beat the trivially-computed lower bound
 * sum_j min(c_j * lb_j, c_j * ub_j).
 */
class LpRandomized : public ::testing::TestWithParam<int>
{
};

TEST_P(LpRandomized, OptimumIsFeasibleAndBounded)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
    Model m;
    const int n = 3 + static_cast<int>(rng.nextBelow(6));
    const int rows = 2 + static_cast<int>(rng.nextBelow(6));
    std::vector<Var> vars;
    double trivial_bound = 0.0;
    LinExpr obj;
    std::vector<double> coefs;
    for (int j = 0; j < n; ++j) {
        const double lb = -1.0 - rng.nextDouble() * 3.0;
        const double ub = 1.0 + rng.nextDouble() * 3.0;
        Var v = m.addContinuous(lb, ub);
        vars.push_back(v);
        const double c = rng.nextDouble() * 4.0 - 2.0;
        coefs.push_back(c);
        obj += c * v;
        trivial_bound += std::min(c * lb, c * ub);
    }
    // Rows are all satisfied at x = 0, so the problem is feasible.
    std::vector<LinExpr> row_exprs(rows);
    std::vector<double> rhs(rows);
    for (int r = 0; r < rows; ++r) {
        for (int j = 0; j < n; ++j)
            row_exprs[r] += (rng.nextDouble() * 2.0 - 1.0) * vars[j];
        rhs[r] = rng.nextDouble() * 2.0 + 0.1;
        m.addConstr(row_exprs[r], Sense::LessEqual, rhs[r]);
    }
    m.setObjective(obj, ObjSense::Minimize);
    auto r = m.optimizeRelaxation();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_GE(r.objective, trivial_bound - 1e-6);
    // Check primal feasibility of the reported point.
    for (int row = 0; row < rows; ++row) {
        EXPECT_LE(Model::evalExpr(row_exprs[row], r.values),
                  rhs[row] + 1e-6);
    }
    for (int j = 0; j < n; ++j) {
        EXPECT_GE(r.values[vars[j].index], m.lowerBound(vars[j]) - 1e-7);
        EXPECT_LE(r.values[vars[j].index], m.upperBound(vars[j]) + 1e-7);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomized, ::testing::Range(0, 25));

} // namespace
} // namespace cosa::solver

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "solver/model.hpp"
#include "solver/presolve.hpp"

namespace cosa::solver {
namespace {

/** Build an LpProblem directly from triplet rows. */
LpProblem
makeLp(int m, int n, const std::vector<Triplet>& entries,
       std::vector<double> rhs, std::vector<Sense> senses,
       std::vector<double> lb, std::vector<double> ub,
       std::vector<double> obj = {})
{
    LpProblem lp;
    lp.num_rows = m;
    lp.num_structural = n;
    lp.matrix = SparseMatrix(m, n, entries);
    lp.rhs = std::move(rhs);
    lp.senses = std::move(senses);
    lp.lb = std::move(lb);
    lp.ub = std::move(ub);
    lp.obj = obj.empty() ? std::vector<double>(static_cast<std::size_t>(n), 0.0)
                         : std::move(obj);
    return lp;
}

TEST(Presolve, SingletonRowBecomesBound)
{
    // Row 0: 2x <= 6  ->  x <= 3. Row 1 is a real row and must survive.
    const LpProblem lp = makeLp(
        2, 2, {{0, 0, 2.0}, {1, 0, 1.0}, {1, 1, 1.0}}, {6.0, 10.0},
        {Sense::LessEqual, Sense::LessEqual}, {0.0, 0.0}, {100.0, 100.0});
    Presolve pre(lp, {});
    ASSERT_FALSE(pre.infeasible());
    EXPECT_EQ(pre.stats().singleton_rows, 1);
    EXPECT_EQ(pre.reduced().num_rows, 1);
    EXPECT_EQ(pre.reduced().num_structural, 2);
    EXPECT_NEAR(pre.reduced().ub[0], 3.0, 1e-12);
}

TEST(Presolve, EqualitySingletonFixesAndEliminatesColumn)
{
    // 3x == 6 fixes x = 2; x's contribution folds into row 1's rhs.
    const LpProblem lp = makeLp(
        2, 2, {{0, 0, 3.0}, {1, 0, 1.0}, {1, 1, 1.0}}, {6.0, 10.0},
        {Sense::Equal, Sense::LessEqual}, {0.0, 0.0}, {100.0, 100.0},
        {5.0, 1.0});
    Presolve pre(lp, {});
    ASSERT_FALSE(pre.infeasible());
    EXPECT_EQ(pre.stats().cols_eliminated, 1);
    EXPECT_EQ(pre.numReducedCols(), 1);
    EXPECT_EQ(pre.reducedCol(0), -1);
    EXPECT_EQ(pre.reducedCol(1), 0);
    EXPECT_EQ(pre.origCol(0), 1);
    // Row 1 became y <= 8 (a singleton again), so it folds into y's ub.
    EXPECT_NEAR(pre.reduced().ub[0], 8.0, 1e-12);
    EXPECT_NEAR(pre.fixedObjective(), 10.0, 1e-12);
}

TEST(Presolve, EmptyAndRedundantRowsRemoved)
{
    // Row 0 has no coefficients and a satisfiable rhs; row 1 is
    // implied by the bounds (x + y <= 4 with x,y in [0,1]).
    const LpProblem lp =
        makeLp(2, 2, {{1, 0, 1.0}, {1, 1, 1.0}}, {3.0, 4.0},
               {Sense::LessEqual, Sense::LessEqual}, {0.0, 0.0}, {1.0, 1.0});
    Presolve pre(lp, {});
    ASSERT_FALSE(pre.infeasible());
    EXPECT_EQ(pre.stats().empty_rows, 1);
    EXPECT_EQ(pre.stats().redundant_rows, 1);
    EXPECT_EQ(pre.reduced().num_rows, 0);
}

TEST(Presolve, InfeasibleEmptyRowDetected)
{
    const LpProblem lp = makeLp(1, 1, {}, {-1.0}, {Sense::LessEqual},
                                {0.0}, {1.0});
    Presolve pre(lp, {});
    EXPECT_TRUE(pre.infeasible());
}

TEST(Presolve, ActivityInfeasibilityDetected)
{
    // x + y >= 5 with x, y in [0, 1] can never hold.
    const LpProblem lp =
        makeLp(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}}, {5.0},
               {Sense::GreaterEqual}, {0.0, 0.0}, {1.0, 1.0});
    Presolve pre(lp, {});
    EXPECT_TRUE(pre.infeasible());
}

TEST(Presolve, ActivityTighteningRoundsIntegerBounds)
{
    // 2x + y <= 7 with y >= 0: x <= 3.5, rounded to 3 for integer x.
    const LpProblem lp =
        makeLp(1, 2, {{0, 0, 2.0}, {0, 1, 1.0}}, {7.0}, {Sense::LessEqual},
               {0.0, 0.0}, {100.0, 100.0});
    Presolve pre(lp, {VarType::Integer, VarType::Continuous});
    ASSERT_FALSE(pre.infeasible());
    ASSERT_EQ(pre.reduced().num_structural, 2);
    EXPECT_NEAR(pre.reduced().ub[0], 3.0, 1e-12);
    EXPECT_GE(pre.stats().bounds_tightened, 1);
}

TEST(Presolve, PostsolveRoundTripRestoresEliminatedColumns)
{
    // x fixed at 2 by an equality singleton; y survives. A reduced
    // solution maps back with x restored and y copied through.
    const LpProblem lp = makeLp(
        2, 3, {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}, {1, 2, 1.0}},
        {2.0, 10.0}, {Sense::Equal, Sense::LessEqual}, {0.0, 0.0, 0.0},
        {5.0, 5.0, 5.0});
    Presolve pre(lp, {});
    ASSERT_FALSE(pre.infeasible());
    ASSERT_EQ(pre.numReducedCols(), 2);
    const std::vector<double> reduced_x = {1.25, 4.75};
    const std::vector<double> orig_x = pre.postsolve(reduced_x);
    ASSERT_EQ(orig_x.size(), 3u);
    EXPECT_NEAR(orig_x[0], 2.0, 1e-12);
    EXPECT_NEAR(orig_x[1], 1.25, 1e-12);
    EXPECT_NEAR(orig_x[2], 4.75, 1e-12);
    // restrict() is the left inverse of postsolve() on surviving cols.
    const std::vector<double> back = pre.restrict(orig_x);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_NEAR(back[0], reduced_x[0], 1e-12);
    EXPECT_NEAR(back[1], reduced_x[1], 1e-12);
}

/**
 * Property: presolve must never change the optimum. Random feasible
 * box-plus-rows MIPs solved with presolve on and off agree on the
 * objective (both runs prove optimality: the instances are tiny).
 */
class PresolveEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(PresolveEquivalence, OptimizeAgreesWithAndWithoutPresolve)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 523 + 7);
    Model with, without;
    Model* models[2] = {&with, &without};
    const int n = 3 + static_cast<int>(rng.nextBelow(5));
    const int rows = 2 + static_cast<int>(rng.nextBelow(5));
    std::vector<std::array<Var, 2>> vars;
    std::vector<double> coefs;
    std::vector<VarType> types;
    for (int j = 0; j < n; ++j) {
        const double ub = 1.0 + static_cast<double>(rng.nextBelow(6));
        const VarType type =
            rng.nextDouble() < 0.5 ? VarType::Integer : VarType::Continuous;
        types.push_back(type);
        vars.push_back({with.addVar(0.0, ub, type),
                        without.addVar(0.0, ub, type)});
        coefs.push_back(rng.nextDouble() * 4.0 - 2.0);
    }
    for (int r = 0; r < rows; ++r) {
        LinExpr exprs[2];
        double max_activity = 0.0;
        for (int j = 0; j < n; ++j) {
            const double a = std::floor(rng.nextDouble() * 5.0) - 2.0;
            exprs[0] += a * vars[static_cast<std::size_t>(j)][0];
            exprs[1] += a * vars[static_cast<std::size_t>(j)][1];
            if (a > 0.0)
                max_activity += a * with.upperBound(
                                        vars[static_cast<std::size_t>(j)][0]);
        }
        // Keep x = 0 feasible; occasionally emit a redundant row.
        const double rhs = rng.nextDouble() < 0.3
                               ? max_activity + 1.0
                               : rng.nextDouble() * 4.0 + 0.5;
        with.addConstr(exprs[0], Sense::LessEqual, rhs);
        without.addConstr(exprs[1], Sense::LessEqual, rhs);
    }
    for (int v = 0; v < 2; ++v) {
        LinExpr obj;
        for (int j = 0; j < n; ++j)
            obj += coefs[static_cast<std::size_t>(j)] *
                   vars[static_cast<std::size_t>(j)][static_cast<std::size_t>(v)];
        models[v]->setObjective(obj, ObjSense::Maximize);
    }
    MipParams params;
    params.presolve = true;
    const MipResult a = with.optimize(params);
    params.presolve = false;
    const MipResult b = without.optimize(params);
    ASSERT_EQ(a.status, Status::Optimal);
    ASSERT_EQ(b.status, Status::Optimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
    // The presolved incumbent must be feasible in the original space.
    ASSERT_EQ(static_cast<int>(a.values.size()), n);
    for (int j = 0; j < n; ++j) {
        EXPECT_GE(a.values[j], -1e-9);
        EXPECT_LE(a.values[j], with.upperBound(vars[static_cast<std::size_t>(
                                   j)][0]) + 1e-9);
        if (types[static_cast<std::size_t>(j)] == VarType::Integer) {
            EXPECT_NEAR(a.values[j], std::round(a.values[j]), 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalence, ::testing::Range(0, 40));

TEST(Probing, FixesBinaryPinchedUnderHypothesis)
{
    // b = 1 implies x <= 1 (row 0) and x >= 2 (row 1) — a
    // contradiction that exists only *under the hypothesis*: neither
    // row alone improves any global bound, so the activity fixed point
    // is powerless, but probing b = 1 propagates both rows on the
    // pinned bounds and lands the implied fixing b = 0.
    const LpProblem lp = makeLp(
        2, 2, {{0, 0, 3.0}, {0, 1, 1.0}, {1, 0, 3.0}, {1, 1, -1.0}},
        {4.0, 1.0}, {Sense::LessEqual, Sense::LessEqual}, {0.0, 0.0},
        {1.0, 4.0});
    const std::vector<VarType> types = {VarType::Binary,
                                        VarType::Continuous};

    Presolve plain(lp, types);
    ASSERT_FALSE(plain.infeasible());
    EXPECT_EQ(plain.stats().probing_fixings, 0);
    EXPECT_EQ(plain.stats().cols_eliminated, 0);
    EXPECT_EQ(plain.numReducedCols(), 2);

    Presolve::Options options;
    options.probing = true;
    Presolve probed(lp, types, options);
    ASSERT_FALSE(probed.infeasible());
    EXPECT_EQ(probed.stats().probing_fixings, 1);
    EXPECT_GE(probed.stats().cols_eliminated, 1);
    EXPECT_EQ(probed.reducedCol(0), -1); // b substituted out...
    const std::vector<double> x =
        probed.postsolve(std::vector<double>(
            static_cast<std::size_t>(probed.numReducedCols()), 0.0));
    EXPECT_EQ(x[0], 0.0); // ...at its only feasible value
}

TEST(Probing, BothValuesInfeasibleProvesInfeasibility)
{
    // Rows 0-1 pinch x when b = 1 (x <= 1 and x >= 2); rows 2-3 pinch
    // it when b = 0 (x <= 1 via x - 3b <= 1, x >= 2 via x + 3b >= 2).
    const LpProblem lp = makeLp(
        4, 2,
        {{0, 0, 3.0}, {0, 1, 1.0}, {1, 0, 3.0}, {1, 1, -1.0},
         {2, 0, -3.0}, {2, 1, 1.0}, {3, 0, 3.0}, {3, 1, 1.0}},
        {4.0, 1.0, 1.0, 2.0},
        {Sense::LessEqual, Sense::LessEqual, Sense::LessEqual,
         Sense::GreaterEqual},
        {0.0, 0.0}, {1.0, 4.0});
    const std::vector<VarType> types = {VarType::Binary,
                                        VarType::Continuous};

    Presolve plain(lp, types);
    EXPECT_FALSE(plain.infeasible()); // invisible to the fixed point

    Presolve::Options options;
    options.probing = true;
    Presolve probed(lp, types, options);
    EXPECT_TRUE(probed.infeasible());
}

TEST(Probing, NoOpOnProblemsWithoutImpliedFixings)
{
    // A plain feasible box problem: probing must change nothing.
    const LpProblem lp = makeLp(
        1, 2, {{0, 0, 1.0}, {0, 1, 1.0}}, {3.0}, {Sense::LessEqual},
        {0.0, 0.0}, {1.0, 4.0});
    const std::vector<VarType> types = {VarType::Binary,
                                        VarType::Continuous};
    Presolve::Options options;
    options.probing = true;
    Presolve probed(lp, types, options);
    ASSERT_FALSE(probed.infeasible());
    EXPECT_EQ(probed.stats().probing_fixings, 0);

    Presolve plain(lp, types);
    EXPECT_EQ(probed.numReducedCols(), plain.numReducedCols());
    EXPECT_EQ(probed.reduced().num_rows, plain.reduced().num_rows);
}

} // namespace
} // namespace cosa::solver

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "solver/model.hpp"

namespace cosa::solver {
namespace {

TEST(Mip, SmallKnapsack)
{
    // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binaries.
    // Best: a + c (weight 5, value 17)? b + c = weight 6, value 20. -> 20.
    Model m;
    Var a = m.addBinary("a");
    Var b = m.addBinary("b");
    Var c = m.addBinary("c");
    m.addConstr(3.0 * a + 4.0 * b + 2.0 * c, Sense::LessEqual, 6.0);
    m.setObjective(10.0 * a + 13.0 * b + 7.0 * c, ObjSense::Maximize);
    auto r = m.optimize();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 20.0, 1e-6);
    EXPECT_NEAR(r.values[b.index], 1.0, 1e-6);
    EXPECT_NEAR(r.values[c.index], 1.0, 1e-6);
}

TEST(Mip, IntegerRounding)
{
    // max x s.t. 2x <= 7, x integer in [0, 10] -> x = 3.
    Model m;
    Var x = m.addVar(0, 10, VarType::Integer, "x");
    m.addConstr(2.0 * x, Sense::LessEqual, 7.0);
    m.setObjective(LinExpr(x), ObjSense::Maximize);
    auto r = m.optimize();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(Mip, InfeasibleIntegerProblem)
{
    // 0.4 <= x <= 0.6 with x binary has no integral point.
    Model m;
    Var x = m.addVar(0, 1, VarType::Binary, "x");
    m.addConstr(LinExpr(x), Sense::GreaterEqual, 0.4);
    m.addConstr(LinExpr(x), Sense::LessEqual, 0.6);
    m.setObjective(LinExpr(x), ObjSense::Maximize);
    auto r = m.optimize();
    EXPECT_EQ(r.status, Status::Infeasible);
}

TEST(Mip, AssignmentProblem)
{
    // 3x3 assignment: minimize cost with rows/cols summing to 1.
    const double cost[3][3] = {{4, 2, 8}, {4, 3, 7}, {3, 1, 6}};
    // Optimal assignment: (0,1)=2? rows distinct cols: try (0,1),(1,0),(2,2):
    // 2+4+6=12; (0,0),(1,1),(2,2): 4+3+6=13; (0,1),(1,2),(2,0): 2+7+3=12;
    // (0,2),(1,0),(2,1): 8+4+1=13; (0,0),(1,2),(2,1): 4+7+1=12;
    // (0,2),(1,1),(2,0): 8+3+3=14. Min = 12.
    Model m;
    Var x[3][3];
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            x[i][j] = m.addBinary();
    for (int i = 0; i < 3; ++i) {
        LinExpr row, col;
        for (int j = 0; j < 3; ++j) {
            row += x[i][j];
            col += x[j][i];
        }
        m.addConstr(row, Sense::Equal, 1.0);
        m.addConstr(col, Sense::Equal, 1.0);
    }
    LinExpr obj;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            obj += cost[i][j] * x[i][j];
    m.setObjective(obj, ObjSense::Minimize);
    auto r = m.optimize();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 12.0, 1e-6);
}

TEST(Mip, BinaryProductLinearization)
{
    // maximize z = x*y - 0.4x - 0.4y. Best is x=y=1 -> 0.2.
    Model m;
    Var x = m.addBinary("x");
    Var y = m.addBinary("y");
    Var z = m.addBinaryProduct(x, y, "xy");
    m.setObjective(LinExpr(z) - 0.4 * x - 0.4 * y, ObjSense::Maximize);
    auto r = m.optimize();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 0.2, 1e-6);
    EXPECT_NEAR(r.values[z.index],
                r.values[x.index] * r.values[y.index], 1e-6);
}

TEST(Mip, BinaryProductForcedZero)
{
    // minimize x + y + 2z with z = x*y and x + y >= 1: pick one var only.
    Model m;
    Var x = m.addBinary("x");
    Var y = m.addBinary("y");
    Var z = m.addBinaryProduct(x, y, "xy");
    m.addConstr(x + y, Sense::GreaterEqual, 1.0);
    m.setObjective(x + y + 2.0 * z, ObjSense::Minimize);
    auto r = m.optimize();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 1.0, 1e-6);
    EXPECT_NEAR(r.values[z.index], 0.0, 1e-6);
}

TEST(Mip, RespectsTimeLimitGracefully)
{
    // A hard-ish problem with a tiny time budget must return quickly with
    // either an incumbent (Feasible/Optimal) or TimeLimit.
    Model m;
    Rng rng(99);
    const int n = 30;
    std::vector<Var> xs;
    LinExpr weight, value;
    for (int i = 0; i < n; ++i) {
        Var v = m.addBinary();
        xs.push_back(v);
        weight += (1.0 + static_cast<double>(rng.nextBelow(100))) * v;
        value += (1.0 + static_cast<double>(rng.nextBelow(100))) * v;
    }
    m.addConstr(weight, Sense::LessEqual, 600.0);
    m.setObjective(value, ObjSense::Maximize);
    MipParams params;
    params.time_limit_sec = 0.2;
    auto r = m.optimize(params);
    EXPECT_TRUE(r.status == Status::Optimal || r.status == Status::Feasible ||
                r.status == Status::TimeLimit);
}

TEST(Mip, MixedIntegerContinuous)
{
    // max 2x + 3y, x integer, y continuous, x + y <= 4.5, y <= 2.3.
    // x = 2? x + y <= 4.5 with y = 2.3 -> x <= 2.2 -> x = 2, obj 10.9.
    Model m;
    Var x = m.addVar(0, 10, VarType::Integer, "x");
    Var y = m.addContinuous(0, 2.3, "y");
    m.addConstr(x + y, Sense::LessEqual, 4.5);
    m.setObjective(2.0 * x + 3.0 * y, ObjSense::Maximize);
    auto r = m.optimize();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 10.9, 1e-6);
    EXPECT_NEAR(r.values[x.index], 2.0, 1e-9);
}

TEST(Mip, EqualityPartitionConstraints)
{
    // Exactly-one constraints, as used by CoSA's factor assignment.
    Model m;
    std::vector<Var> slots;
    for (int i = 0; i < 5; ++i)
        slots.push_back(m.addBinary());
    LinExpr sum;
    for (Var v : slots)
        sum += v;
    m.addConstr(sum, Sense::Equal, 1.0);
    LinExpr obj;
    const double weights[5] = {0.3, 0.9, 0.1, 0.7, 0.5};
    for (int i = 0; i < 5; ++i)
        obj += weights[i] * slots[i];
    m.setObjective(obj, ObjSense::Maximize);
    auto r = m.optimize();
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, 0.9, 1e-6);
    EXPECT_NEAR(r.values[slots[1].index], 1.0, 1e-6);
}

/**
 * Property test: random knapsacks, MIP answer must match brute force
 * enumeration exactly.
 */
class MipKnapsack : public ::testing::TestWithParam<int>
{
};

TEST_P(MipKnapsack, MatchesBruteForce)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
    const int n = 8 + static_cast<int>(rng.nextBelow(5)); // 8..12 items
    std::vector<double> w(n), v(n);
    double cap = 0.0;
    for (int i = 0; i < n; ++i) {
        w[i] = 1.0 + static_cast<double>(rng.nextBelow(20));
        v[i] = 1.0 + static_cast<double>(rng.nextBelow(30));
        cap += w[i];
    }
    cap *= 0.4;

    // Brute force.
    double best = 0.0;
    for (int mask = 0; mask < (1 << n); ++mask) {
        double tw = 0.0, tv = 0.0;
        for (int i = 0; i < n; ++i) {
            if (mask & (1 << i)) {
                tw += w[i];
                tv += v[i];
            }
        }
        if (tw <= cap)
            best = std::max(best, tv);
    }

    Model m;
    LinExpr weight, value;
    for (int i = 0; i < n; ++i) {
        Var x = m.addBinary();
        weight += w[i] * x;
        value += v[i] * x;
    }
    m.addConstr(weight, Sense::LessEqual, cap);
    m.setObjective(value, ObjSense::Maximize);
    MipParams params;
    params.rel_gap = 1e-9;
    auto r = m.optimize(params);
    ASSERT_EQ(r.status, Status::Optimal);
    EXPECT_NEAR(r.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipKnapsack, ::testing::Range(0, 20));

/**
 * Property test: random set-partition style MIPs (the structural shape of
 * CoSA's prime-factor allocation) against brute force.
 */
class MipPartition : public ::testing::TestWithParam<int>
{
};

TEST_P(MipPartition, MatchesBruteForce)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
    const int items = 5;
    const int slots = 3;
    double value[5][3];
    double load[5][3];
    double cap[3];
    for (int s = 0; s < slots; ++s)
        cap[s] = 2.0 + rng.nextDouble() * 3.0;
    for (int i = 0; i < items; ++i) {
        for (int s = 0; s < slots; ++s) {
            value[i][s] = rng.nextDouble() * 10.0;
            load[i][s] = 0.5 + rng.nextDouble() * 2.0;
        }
    }

    // Brute force over slot assignments (3^5 = 243).
    double best = -1.0;
    for (int code = 0; code < 243; ++code) {
        int c = code;
        double used[3] = {0, 0, 0};
        double total = 0.0;
        for (int i = 0; i < items; ++i) {
            const int s = c % 3;
            c /= 3;
            used[s] += load[i][s];
            total += value[i][s];
        }
        if (used[0] <= cap[0] && used[1] <= cap[1] && used[2] <= cap[2])
            best = std::max(best, total);
    }

    Model m;
    std::vector<std::vector<Var>> x(items, std::vector<Var>(slots));
    for (int i = 0; i < items; ++i) {
        LinExpr one;
        for (int s = 0; s < slots; ++s) {
            x[i][s] = m.addBinary();
            one += x[i][s];
        }
        m.addConstr(one, Sense::Equal, 1.0);
    }
    for (int s = 0; s < slots; ++s) {
        LinExpr used;
        for (int i = 0; i < items; ++i)
            used += load[i][s] * x[i][s];
        m.addConstr(used, Sense::LessEqual, cap[s]);
    }
    LinExpr obj;
    for (int i = 0; i < items; ++i)
        for (int s = 0; s < slots; ++s)
            obj += value[i][s] * x[i][s];
    m.setObjective(obj, ObjSense::Maximize);
    MipParams params;
    params.rel_gap = 1e-9;
    auto r = m.optimize(params);

    if (best < 0.0) {
        EXPECT_EQ(r.status, Status::Infeasible);
    } else {
        ASSERT_EQ(r.status, Status::Optimal);
        EXPECT_NEAR(r.objective, best, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipPartition, ::testing::Range(0, 20));

} // namespace
} // namespace cosa::solver

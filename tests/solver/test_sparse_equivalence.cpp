#include <gtest/gtest.h>

#include <cmath>

#include "cosa/formulation.hpp"
#include "cosa/scheduler.hpp"
#include "problem/workloads.hpp"
#include "reference_dense_simplex.hpp"
#include "solver/simplex.hpp"

namespace cosa {
namespace {

using solver::LpProblem;
using solver::LpStatus;
using solver::Sense;
using solver::Simplex;
using solver::SparseMatrix;
using solver::Triplet;
using solver::testing::DenseLp;
using solver::testing::RefDenseSimplex;
using solver::testing::RefStatus;

/** Mirror MipSolver::buildLp without presolve: the raw standard form. */
void
buildStandardForm(const solver::Model& model, LpProblem* sparse,
                  DenseLp* dense)
{
    const int n = model.numVars();
    const int m = model.numConstrs();
    const double sign = 1.0; // CoSA models minimize

    sparse->num_rows = m;
    sparse->num_structural = n;
    dense->num_rows = m;
    dense->num_structural = n;
    dense->cols.assign(static_cast<std::size_t>(m) * n, 0.0);

    std::vector<Triplet> triplets;
    for (int r = 0; r < m; ++r) {
        for (const auto& [col, coef] : model.rowTerms(r)) {
            triplets.push_back({r, col, coef});
            dense->at(r, col) = coef;
        }
        sparse->rhs.push_back(model.rowRhs(r));
        sparse->senses.push_back(model.rowSense(r));
    }
    sparse->matrix = SparseMatrix(m, n, triplets);
    dense->rhs = sparse->rhs;
    dense->senses = sparse->senses;
    for (int j = 0; j < n; ++j) {
        const solver::Var v{j};
        sparse->obj.push_back(sign * model.objCoef(v));
        sparse->lb.push_back(model.lowerBound(v));
        sparse->ub.push_back(model.upperBound(v));
    }
    dense->obj = sparse->obj;
    dense->lb = sparse->lb;
    dense->ub = sparse->ub;
}

/**
 * The tentpole equivalence claim: on every unique ResNet-50 layer and
 * two architectures, the sparse revised core must reproduce the seed
 * dense tableau's LP solve exactly — same status, same objective, and
 * the same number of pivots (the nonzeros iterate in dense order, so
 * the pivot sequences are identical, not merely equivalent).
 */
TEST(SparseEquivalence, LpRelaxationMatchesDenseReferenceOnResNet50)
{
    const Workload net = workloads::resNet50();
    const ArchSpec archs[2] = {ArchSpec::simbaBaseline(),
                               ArchSpec::simba8x8()};
    int compared = 0;
    for (const ArchSpec& arch : archs) {
        for (const LayerSpec& layer : net.layers) {
            CosaFormulation formulation(layer, arch, CosaConfig{});
            LpProblem sparse_lp;
            DenseLp dense_lp;
            buildStandardForm(formulation.model(), &sparse_lp, &dense_lp);
            EXPECT_LT(sparse_lp.matrix.density(), 0.05)
                << layer.name << ": CoSA matrices are supposed to be "
                << "sparse";

            Simplex sparse(sparse_lp);
            RefDenseSimplex dense(dense_lp);
            const LpStatus s_st = sparse.solvePrimal();
            const RefStatus d_st = dense.solvePrimal();
            ASSERT_EQ(s_st, LpStatus::Optimal)
                << layer.name << " on " << arch.name;
            ASSERT_EQ(d_st, RefStatus::Optimal)
                << layer.name << " on " << arch.name;
            EXPECT_NEAR(sparse.objective(), dense.objective(), 1e-6)
                << layer.name << " on " << arch.name;
            EXPECT_EQ(sparse.iterations(), dense.iterations())
                << layer.name << " on " << arch.name
                << ": pivot sequences diverged";
            ++compared;
        }
    }
    EXPECT_EQ(compared, 46); // 23 unique layers x 2 archs
}

/** Work-budgeted CoSA solves are bit-deterministic across runs. */
TEST(SparseEquivalence, MipSolveIsDeterministicUnderWorkBudget)
{
    const LayerSpec layer = LayerSpec::fromLabel("3_14_256_256_2");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    CosaConfig config;
    config.mip.work_limit = 4000; // small deterministic budget
    const SearchResult a = CosaScheduler(config).schedule(layer, arch);
    const SearchResult b = CosaScheduler(config).schedule(layer, arch);
    ASSERT_TRUE(a.found);
    ASSERT_TRUE(b.found);
    EXPECT_EQ(a.eval.cycles, b.eval.cycles);
    EXPECT_EQ(a.mapping, b.mapping);
    EXPECT_EQ(a.stats.mip_nodes, b.stats.mip_nodes);
    EXPECT_EQ(a.stats.lp_iterations, b.stats.lp_iterations);
}

/**
 * Presolve must not change what the solver proves: on layers small
 * enough to solve to (near-zero-gap) optimality, presolve on and off
 * reach the same objective, and presolve actually removes work.
 */
TEST(SparseEquivalence, MipPresolveOnOffAgreeOnProvenOptima)
{
    // Layers small enough that branch and bound proves the (near-)
    // zero-gap optimum in well under a second per configuration.
    const char* labels[] = {"1_1_2048_1000_1", "1_1_64_32_1",
                            "1_2_16_16_1"};
    const ArchSpec arch = ArchSpec::simbaBaseline();
    std::int64_t total_reductions = 0;
    for (const char* label : labels) {
        const LayerSpec layer = LayerSpec::fromLabel(label);
        solver::MipResult results[2];
        for (int p = 0; p < 2; ++p) {
            CosaConfig config;
            config.mip.presolve = p == 0;
            config.mip.rel_gap = 1e-9;
            config.mip.work_limit = 0; // run to proof
            CosaFormulation formulation(layer, arch, config);
            const auto mapping = formulation.solve(&results[p]);
            ASSERT_TRUE(mapping.has_value()) << label;
            ASSERT_EQ(results[p].status, solver::Status::Optimal) << label;
        }
        EXPECT_NEAR(results[0].objective, results[1].objective, 1e-6)
            << label;
        total_reductions += results[0].presolve_rows_removed +
                            results[0].presolve_cols_eliminated +
                            results[0].presolve_bounds_tightened;
        EXPECT_EQ(results[1].presolve_rows_removed, 0) << label;
        EXPECT_EQ(results[1].presolve_bounds_tightened, 0) << label;
    }
    // CoSA models have no removable rows (their big-M reuse rows all
    // bind somewhere), but presolve must still find bound tightenings.
    EXPECT_GT(total_reductions, 0);
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "cachestore/store.hpp"
#include "engine/scheduling_engine.hpp"
#include "server/wire.hpp"

namespace cosa {
namespace {

// The store's acceptance bar: a fixed request produces *byte-identical*
// wire results no matter which cache tier sits behind the engine —
// private in-memory map, fresh persistent store, warm reloaded store,
// 1 shard or 16, even a store that just recovered a torn log tail.
// resultsToJson is the canonical deterministic serialization, so
// string equality here is bit-for-bit equality of every mapping and
// every double in the response.

class TempDir
{
  public:
    explicit TempDir(const std::string& name)
        : path_("cosa_cachestore_invariance_" + name)
    {
        std::filesystem::remove_all(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

EngineConfig
fastRandomConfig()
{
    EngineConfig config;
    config.scheduler = SchedulerKind::Random;
    config.num_threads = 2;
    config.random.max_samples = 500;
    config.random.target_valid = 1;
    return config;
}

std::string
runFixedRequest(const std::shared_ptr<ScheduleCache>& cache)
{
    const SchedulingEngine engine(fastRandomConfig(), cache);
    std::vector<NetworkResult> results;
    results.push_back(engine.scheduleNetwork(workloads::resNet50(),
                                             ArchSpec::simbaBaseline()));
    return server::resultsToJson(results).dump();
}

cachestore::StoreConfig
storeConfig(const std::string& dir, int num_shards)
{
    cachestore::StoreConfig config;
    config.dir = dir;
    config.num_shards = num_shards;
    config.fsync_each_append = false;
    return config;
}

std::shared_ptr<cachestore::PersistentScheduleCache>
openStore(const cachestore::StoreConfig& config)
{
    auto opened = cachestore::PersistentScheduleCache::open(config);
    EXPECT_TRUE(opened.ok()) << opened.status().message();
    return opened.ok() ? *opened : nullptr;
}

TEST(CachestoreInvariance, EveryTierProducesIdenticalWireBytes)
{
    // Baseline: the plain in-memory cache.
    const std::string baseline =
        runFixedRequest(std::make_shared<ScheduleCache>());
    ASSERT_FALSE(baseline.empty());

    // A fresh 1-shard store behaves like the empty base cache.
    TempDir dir1("one");
    {
        auto store = openStore(storeConfig(dir1.path(), 1));
        ASSERT_NE(store, nullptr);
        EXPECT_EQ(runFixedRequest(store), baseline);
    }

    // Reopening the same directory replays the logs; the warm store
    // answers from disk yet serializes the same bytes.
    {
        auto warm = openStore(storeConfig(dir1.path(), 1));
        ASSERT_NE(warm, nullptr);
        EXPECT_GT(warm->size(), 0u);
        EXPECT_EQ(runFixedRequest(warm), baseline);
        const auto stats = warm->stats();
        EXPECT_GT(stats.hits, 0); // it really answered from the cache
    }

    // 16 shards hash the same entries differently on disk; the global
    // sequence merge keeps the observable behavior identical.
    TempDir dir16("sixteen");
    {
        auto store = openStore(storeConfig(dir16.path(), 16));
        ASSERT_NE(store, nullptr);
        EXPECT_EQ(runFixedRequest(store), baseline);
    }

    // Tear the tail off one warm shard: recovery drops the damaged
    // record, the engine re-solves just that layer, and the response
    // bytes still match.
    const std::string log = dir1.path() + "/shard-0000.log";
    const auto size = std::filesystem::file_size(log);
    ASSERT_GT(size, 17u);
    std::filesystem::resize_file(log, size - 17);
    {
        auto torn = openStore(storeConfig(dir1.path(), 1));
        ASSERT_NE(torn, nullptr);
        EXPECT_TRUE(
            torn->storeStats().shards[0].torn_tail_recovered);
        EXPECT_EQ(runFixedRequest(torn), baseline);
    }
}

} // namespace
} // namespace cosa

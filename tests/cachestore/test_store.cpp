#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cachestore/compact.hpp"
#include "cachestore/store.hpp"
#include "common/metrics.hpp"

namespace cosa {
namespace cachestore {
namespace {

/** Self-deleting temp store directory under the build dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string& name)
        : path_("cosa_cachestore_store_test_" + name)
    {
        std::filesystem::remove_all(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

StoreConfig
fastConfig(const std::string& dir, int num_shards = 4)
{
    StoreConfig config;
    config.dir = dir;
    config.num_shards = num_shards;
    config.fsync_each_append = false; // tests churn hundreds of inserts
    return config;
}

std::shared_ptr<PersistentScheduleCache>
openOrDie(const StoreConfig& config)
{
    auto opened = PersistentScheduleCache::open(config);
    EXPECT_TRUE(opened.ok()) << opened.status().message();
    return opened.ok() ? *opened : nullptr;
}

/** A synthetic but realistic entry; i controls shape and values. */
ScheduleCache::ExportedEntry
makeEntry(int i)
{
    static const char* kLabels[] = {"3_14_256_256_1", "1_7_512_2048_1",
                                    "3_28_128_128_1", "7_112_3_64_2"};
    ScheduleCache::ExportedEntry entry;
    entry.layer = LayerSpec::fromLabel(kLabels[i % 4], 1 + i % 3);
    entry.layer.name = "layer" + std::to_string(i);
    entry.key.layer_key = entry.layer.canonicalKey();
    entry.key.arch_key = "simba/pe" + std::to_string(i % 5);
    entry.key.scheduler_key = "random/s11";
    entry.key.evaluator_key = "analytical/v1";
    SearchResult& r = entry.result;
    r.found = true;
    r.scheduler = "random";
    r.stats.samples = 100 + i;
    r.stats.search_time_sec = 0.01 + i / 3.0;
    r.eval.valid = true;
    r.eval.cycles = 1.0e6 * (1.0 + i / 7.0);
    r.eval.energy_pj = 2.0e9 / (1.0 + i / 3.0);
    r.eval.total_macs = entry.layer.macs();
    r.eval.level_cycles = {1e5 / 3.0, 2e5 / 3.0, 4e5 / 3.0};
    r.mapping.levels = {{Loop{Dim::K, 16, true}},
                        {Loop{Dim::C, 4, false},
                         Loop{Dim::P, 7 + i % 7, false}}};
    return entry;
}

void
expectSameResult(const SearchResult& a, const SearchResult& b)
{
    EXPECT_EQ(a.found, b.found);
    EXPECT_EQ(a.mapping, b.mapping);
    EXPECT_EQ(a.eval.cycles, b.eval.cycles);       // bit-exact
    EXPECT_EQ(a.eval.energy_pj, b.eval.energy_pj); // bit-exact
    EXPECT_EQ(a.eval.level_cycles, b.eval.level_cycles);
    EXPECT_EQ(a.stats.samples, b.stats.samples);
    EXPECT_EQ(a.stats.search_time_sec, b.stats.search_time_sec);
}

TEST(CachestoreStore, InsertLookupPersistsAcrossReopen)
{
    TempDir dir("reopen");
    std::vector<ScheduleCache::ExportedEntry> entries;
    for (int i = 0; i < 40; ++i)
        entries.push_back(makeEntry(i));
    {
        auto store = openOrDie(fastConfig(dir.path()));
        ASSERT_NE(store, nullptr);
        for (const auto& e : entries)
            store->insert(e.key, e.result, e.layer);
        for (const auto& e : entries) {
            const auto hit = store->lookup(e.key);
            ASSERT_TRUE(hit.has_value());
            expectSameResult(e.result, *hit);
        }
        ASSERT_TRUE(store->syncAll().ok());
    }
    // A fresh mount replays the logs: same entries, same values.
    auto revived = openOrDie(fastConfig(dir.path()));
    ASSERT_NE(revived, nullptr);
    EXPECT_EQ(revived->size(), entries.size());
    for (const auto& e : entries) {
        const auto hit = revived->lookup(e.key);
        ASSERT_TRUE(hit.has_value()) << e.key.flat();
        expectSameResult(e.result, *hit);
    }
    const StoreStats stats = revived->storeStats();
    std::int64_t recovered = 0;
    for (const auto& shard : stats.shards) {
        recovered += shard.records_recovered;
        EXPECT_FALSE(shard.torn_tail_recovered);
    }
    EXPECT_EQ(recovered, static_cast<std::int64_t>(entries.size()));
}

TEST(CachestoreStore, MatchesBaseCacheBitForBit)
{
    TempDir dir("parity");
    auto base = std::make_shared<ScheduleCache>();
    auto store = openOrDie(fastConfig(dir.path()));
    ASSERT_NE(store, nullptr);

    for (int i = 0; i < 60; ++i) {
        const auto e = makeEntry(i);
        base->insert(e.key, e.result, e.layer);
        store->insert(e.key, e.result, e.layer);
    }
    // Overwrites keep the original insertion order in both tiers.
    for (int i = 0; i < 60; i += 7) {
        auto e = makeEntry(i);
        e.result.eval.cycles *= 1.25;
        base->insert(e.key, e.result, e.layer);
        store->insert(e.key, e.result, e.layer);
    }

    // Exact lookups agree.
    for (int i = 0; i < 60; ++i) {
        const auto e = makeEntry(i);
        const auto a = base->lookup(e.key);
        const auto b = store->lookup(e.key);
        ASSERT_EQ(a.has_value(), b.has_value());
        expectSameResult(*a, *b);
    }

    // Nearest-neighbor scans agree (same candidate, same tie-breaks)
    // for both unseen shapes and shapes excluded as exact pairs.
    const char* kProbes[] = {"3_14_256_256_1", "5_56_64_256_1",
                             "1_7_512_2048_1", "11_224_3_32_4"};
    for (const char* label : kProbes) {
        for (int arch = 0; arch < 6; ++arch) {
            const LayerSpec probe = LayerSpec::fromLabel(label);
            const std::string arch_key =
                "simba/pe" + std::to_string(arch);
            const auto a = base->nearestNeighbor(
                arch_key, "random/s11", "analytical/v1", probe);
            const auto b = store->nearestNeighbor(
                arch_key, "random/s11", "analytical/v1", probe);
            ASSERT_EQ(a.has_value(), b.has_value()) << label;
            if (a.has_value())
                expectSameResult(*a, *b);
        }
    }
    EXPECT_EQ(base->stats().neighbor_hits, store->stats().neighbor_hits);
}

TEST(CachestoreStore, ShardCountIsInvisible)
{
    TempDir dir1("shards1");
    TempDir dir16("shards16");
    auto one = openOrDie(fastConfig(dir1.path(), 1));
    auto sixteen = openOrDie(fastConfig(dir16.path(), 16));
    ASSERT_NE(one, nullptr);
    ASSERT_NE(sixteen, nullptr);

    for (int i = 0; i < 50; ++i) {
        const auto e = makeEntry(i);
        one->insert(e.key, e.result, e.layer);
        sixteen->insert(e.key, e.result, e.layer);
    }
    // exportEntries is global first-insertion order — identical
    // regardless of how keys landed on shards.
    const auto a = one->exportEntries();
    const auto b = sixteen->exportEntries();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key.flat(), b[i].key.flat()) << i;
        expectSameResult(a[i].result, b[i].result);
    }
    // And the NN merge picks the same candidate.
    const LayerSpec probe = LayerSpec::fromLabel("5_56_64_256_1");
    const auto na = one->nearestNeighbor("simba/pe1", "random/s11",
                                         "analytical/v1", probe);
    const auto nb = sixteen->nearestNeighbor("simba/pe1", "random/s11",
                                             "analytical/v1", probe);
    ASSERT_EQ(na.has_value(), nb.has_value());
    if (na.has_value())
        expectSameResult(*na, *nb);
}

TEST(CachestoreStore, EvictionsPersistAndCountInMetrics)
{
    TempDir dir("evict");
    StoreConfig config = fastConfig(dir.path(), 2);
    config.capacity = 10;

    std::int64_t metric_before = 0;
    {
        auto store = openOrDie(config);
        ASSERT_NE(store, nullptr);
        // Capture the per-shard eviction counters before the churn
        // (the registry is process-global).
        for (int s = 0; s < 2; ++s)
            metric_before +=
                metrics::MetricsRegistry::global()
                    .counter("cosa_cache_evictions_total",
                             "Schedule-cache LRU evictions by shard",
                             {{"shard", std::to_string(s)}})
                    .value();
        for (int i = 0; i < 30; ++i) {
            const auto e = makeEntry(i);
            store->insert(e.key, e.result, e.layer);
        }
        EXPECT_LE(store->size(), 10u);
        const auto stats = store->stats();
        EXPECT_GT(stats.evictions, 0);

        std::int64_t metric_after = 0;
        for (int s = 0; s < 2; ++s)
            metric_after +=
                metrics::MetricsRegistry::global()
                    .counter("cosa_cache_evictions_total",
                             "Schedule-cache LRU evictions by shard",
                             {{"shard", std::to_string(s)}})
                    .value();
        EXPECT_EQ(metric_after - metric_before, stats.evictions);
        ASSERT_TRUE(store->syncAll().ok());
    }
    // Evict records replayed: the reopened store holds exactly the
    // survivors, not the evicted keys.
    auto revived = openOrDie(config);
    ASSERT_NE(revived, nullptr);
    EXPECT_LE(revived->size(), 10u);
    EXPECT_EQ(revived->stats().entries,
              static_cast<std::int64_t>(revived->size()));
}

TEST(CachestoreStore, TextSnapshotRoundTripsBothWays)
{
    TempDir dir("text");
    const std::string snapshot = dir.path() + "/snapshot.txt";
    auto store = openOrDie(fastConfig(dir.path() + "/store"));
    ASSERT_NE(store, nullptr);
    for (int i = 0; i < 25; ++i) {
        const auto e = makeEntry(i);
        store->insert(e.key, e.result, e.layer);
    }

    // Store -> v3 text -> in-memory base cache.
    const auto saved = store->save(snapshot);
    ASSERT_TRUE(saved.ok) << saved.error;
    auto base = std::make_shared<ScheduleCache>();
    const auto loaded = base->load(snapshot);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, saved.entries);
    EXPECT_EQ(base->size(), store->size());
    for (const auto& e : store->exportEntries()) {
        const auto hit = base->lookup(e.key);
        ASSERT_TRUE(hit.has_value());
        expectSameResult(e.result, *hit);
    }

    // Base cache -> v3 text -> a fresh store (debug import).
    auto imported = openOrDie(fastConfig(dir.path() + "/imported"));
    ASSERT_NE(imported, nullptr);
    const auto merged = imported->load(snapshot);
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(merged.entries, saved.entries);
    EXPECT_EQ(imported->size(), store->size());
}

TEST(CachestoreStore, CompactionBoundsLogUnderChurn)
{
    TempDir dir("churn");
    StoreConfig config = fastConfig(dir.path(), 2);
    config.capacity = 20;
    config.compaction.min_bytes = 4 * 1024;
    auto store = openOrDie(config);
    ASSERT_NE(store, nullptr);

    for (int round = 0; round < 8; ++round)
        for (int i = 0; i < 40; ++i) {
            auto e = makeEntry(i);
            e.key.arch_key += "/r" + std::to_string(round);
            store->insert(e.key, e.result, e.layer);
        }

    const StoreStats stats = store->storeStats();
    std::int64_t compactions = 0;
    std::uint64_t log_bytes = 0, live_bytes = 0;
    for (const auto& shard : stats.shards) {
        compactions += shard.compactions;
        log_bytes += shard.log_bytes;
        live_bytes += shard.live_bytes;
    }
    EXPECT_GT(compactions, 0);
    // The fold keeps dead weight below ~garbage_ratio x live (plus
    // headers and the records appended since the last fold).
    EXPECT_LT(log_bytes, live_bytes * 4 + 64 * 1024);

    // The folded generation still replays to the same live set.
    const auto before = store->exportEntries();
    store.reset();
    auto revived = openOrDie(config);
    ASSERT_NE(revived, nullptr);
    const auto after = revived->exportEntries();
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].key.flat(), after[i].key.flat());
        expectSameResult(before[i].result, after[i].result);
    }
}

TEST(CachestoreStore, StaleCompactionTempIsIgnoredAndRemoved)
{
    TempDir dir("staletmp");
    {
        auto store = openOrDie(fastConfig(dir.path(), 2));
        ASSERT_NE(store, nullptr);
        for (int i = 0; i < 10; ++i) {
            const auto e = makeEntry(i);
            store->insert(e.key, e.result, e.layer);
        }
        ASSERT_TRUE(store->syncAll().ok());
    }
    // Simulate a crash between writing the new generation and the
    // atomic rename: a stale .tmp sits next to a healthy shard log.
    const std::string tmp =
        compactionTempPath(dir.path() + "/shard-0000.log");
    std::ofstream(tmp, std::ios::binary) << "half-written generation";
    ASSERT_TRUE(std::filesystem::exists(tmp));

    auto revived = openOrDie(fastConfig(dir.path(), 2));
    ASSERT_NE(revived, nullptr);
    EXPECT_EQ(revived->size(), 10u);
    EXPECT_FALSE(std::filesystem::exists(tmp));
}

TEST(CachestoreStore, TornShardTailRecoversOnReopen)
{
    TempDir dir("torntail");
    std::vector<ScheduleCache::ExportedEntry> entries;
    {
        auto store = openOrDie(fastConfig(dir.path(), 1));
        ASSERT_NE(store, nullptr);
        for (int i = 0; i < 12; ++i) {
            entries.push_back(makeEntry(i));
            store->insert(entries.back().key, entries.back().result,
                          entries.back().layer);
        }
        ASSERT_TRUE(store->syncAll().ok());
    }
    // Crash mid-append: the last frame is torn.
    const std::string log = dir.path() + "/shard-0000.log";
    const auto size = std::filesystem::file_size(log);
    std::filesystem::resize_file(log, size - 13);

    auto revived = openOrDie(fastConfig(dir.path(), 1));
    ASSERT_NE(revived, nullptr);
    EXPECT_EQ(revived->size(), entries.size() - 1);
    const StoreStats stats = revived->storeStats();
    EXPECT_TRUE(stats.shards[0].torn_tail_recovered);
    EXPECT_EQ(stats.shards[0].records_skipped, 1);
    // Every surviving entry is intact; the torn one is simply absent.
    for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
        const auto hit = revived->lookup(entries[i].key);
        ASSERT_TRUE(hit.has_value()) << i;
        expectSameResult(entries[i].result, *hit);
    }
    EXPECT_FALSE(revived->contains(entries.back().key));

    // The truncated tail is gone for good: appends land cleanly and
    // the next mount sees no damage.
    const auto extra = makeEntry(99);
    revived->insert(extra.key, extra.result, extra.layer);
    ASSERT_TRUE(revived->syncAll().ok());
    revived.reset();
    auto third = openOrDie(fastConfig(dir.path(), 1));
    ASSERT_NE(third, nullptr);
    EXPECT_EQ(third->size(), entries.size());
    EXPECT_FALSE(third->storeStats().shards[0].torn_tail_recovered);
}

TEST(CachestoreStore, ShardCountMismatchIsAHardError)
{
    TempDir dir("mismatch");
    {
        auto store = openOrDie(fastConfig(dir.path(), 4));
        ASSERT_NE(store, nullptr);
    }
    auto reopened = PersistentScheduleCache::open(fastConfig(dir.path(), 8));
    EXPECT_FALSE(reopened.ok());

    // num_shards = 0 adopts whatever the manifest says.
    auto adopted = openOrDie(fastConfig(dir.path(), 0));
    ASSERT_NE(adopted, nullptr);
    EXPECT_EQ(adopted->storeStats().num_shards, 4);
}

TEST(CachestoreStore, ClearEmptiesTheStoreDurably)
{
    TempDir dir("clear");
    {
        auto store = openOrDie(fastConfig(dir.path(), 2));
        ASSERT_NE(store, nullptr);
        for (int i = 0; i < 15; ++i) {
            const auto e = makeEntry(i);
            store->insert(e.key, e.result, e.layer);
        }
        store->clear();
        EXPECT_EQ(store->size(), 0u);
    }
    auto revived = openOrDie(fastConfig(dir.path(), 2));
    ASSERT_NE(revived, nullptr);
    EXPECT_EQ(revived->size(), 0u);
}

} // namespace
} // namespace cachestore
} // namespace cosa

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "cachestore/log.hpp"

namespace cosa {
namespace cachestore {
namespace {

/** Self-deleting temp log path under the build dir. */
class TempLog
{
  public:
    explicit TempLog(const std::string& name)
        : path_("cosa_cachestore_log_test_" + name + ".log")
    {
        std::remove(path_.c_str());
    }
    ~TempLog() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/** A full insert record with deliberately awkward values: inexact
 *  doubles, negative counters, multi-byte varints, empty vectors. */
LogRecord
sampleInsert(int i)
{
    LogRecord record;
    record.kind = LogRecord::Kind::kInsert;
    record.seq = 1 + static_cast<std::uint64_t>(i) * 977;
    record.key.layer_key = "r3_s3_p14_q14_c256_k256_n1_st1";
    record.key.arch_key = "simba/pe" + std::to_string(i);
    record.key.scheduler_key = "random/s11";
    record.key.evaluator_key = "analytical/v1";
    record.layer = LayerSpec::fromLabel("3_14_256_256_1");
    record.layer.name = "conv" + std::to_string(i);

    SearchResult& r = record.result;
    r.found = true;
    r.scheduler = "random";
    r.stats.samples = 500 + i;
    r.stats.valid_evaluated = 17;
    r.stats.search_time_sec = 0.1 + i / 3.0; // inexact in binary
    r.stats.mip_nodes = 123456789012345LL;   // multi-byte varint
    r.stats.lp_iterations = 42;
    r.stats.warm_starts_installed = 1;
    r.stats.warm_start_hits = 1;
    r.stats.presolve_time_sec = 1.0 / 3.0;
    r.stats.root_lp_time_sec = 2.0 / 7.0;
    r.stats.tree_time_sec = 1e-9;
    r.stats.lu_factorizations = 3;
    r.stats.lu_eta_updates = 0;
    r.stats.lu_unstable_updates = -1; // zigzag path
    r.stats.lu_fill_refactor_requests = 0;
    r.eval.valid = true;
    r.eval.compute_cycles = 1.0e6 / 7.0;
    r.eval.memory_cycles = 2.0e6 / 7.0;
    r.eval.cycles = 3.0e6 / 7.0;
    r.eval.energy_pj = 5.0e9 / 3.0;
    r.eval.mac_energy_pj = 1.0e9 / 3.0;
    r.eval.noc_energy_pj = 0.25e9 / 3.0;
    r.eval.noc_bytes = 1.0e7 / 9.0;
    r.eval.dram_bytes = -0.0; // signed zero survives
    r.eval.spatial_utilization = 0.62 + i * 1e-7;
    r.eval.total_macs = record.layer.macs();
    r.eval.reads_bytes = {1e6 / 3.0, 2e6 / 3.0, 4e6 / 3.0};
    r.eval.writes_bytes = {};
    r.eval.level_cycles = {1e5, 2e5 / 7.0};
    r.eval.level_energy_pj = {1e8 / 7.0};
    r.mapping.levels = {
        {Loop{Dim::K, 16, true}, Loop{Dim::C, 4, false}},
        {},
        {Loop{Dim::P, 14, false}, Loop{Dim::Q, 14, false},
         Loop{Dim::R, 3, false}},
    };
    return record;
}

void
expectRecordsEqual(const LogRecord& a, const LogRecord& b)
{
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.key.flat(), b.key.flat());
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.result.found, b.result.found);
    EXPECT_EQ(a.result.scheduler, b.result.scheduler);
    const SearchStats& s = a.result.stats;
    const SearchStats& t = b.result.stats;
    EXPECT_EQ(s.samples, t.samples);
    EXPECT_EQ(s.valid_evaluated, t.valid_evaluated);
    EXPECT_EQ(s.search_time_sec, t.search_time_sec); // bit-exact
    EXPECT_EQ(s.mip_nodes, t.mip_nodes);
    EXPECT_EQ(s.lp_iterations, t.lp_iterations);
    EXPECT_EQ(s.warm_starts_installed, t.warm_starts_installed);
    EXPECT_EQ(s.warm_start_hits, t.warm_start_hits);
    EXPECT_EQ(s.presolve_time_sec, t.presolve_time_sec);
    EXPECT_EQ(s.root_lp_time_sec, t.root_lp_time_sec);
    EXPECT_EQ(s.tree_time_sec, t.tree_time_sec);
    EXPECT_EQ(s.lu_factorizations, t.lu_factorizations);
    EXPECT_EQ(s.lu_eta_updates, t.lu_eta_updates);
    EXPECT_EQ(s.lu_unstable_updates, t.lu_unstable_updates);
    EXPECT_EQ(s.lu_fill_refactor_requests, t.lu_fill_refactor_requests);
    const Evaluation& e = a.result.eval;
    const Evaluation& f = b.result.eval;
    EXPECT_EQ(e.valid, f.valid);
    EXPECT_EQ(e.invalid_reason, f.invalid_reason);
    EXPECT_EQ(e.compute_cycles, f.compute_cycles);
    EXPECT_EQ(e.memory_cycles, f.memory_cycles);
    EXPECT_EQ(e.cycles, f.cycles);
    EXPECT_EQ(e.energy_pj, f.energy_pj);
    EXPECT_EQ(e.mac_energy_pj, f.mac_energy_pj);
    EXPECT_EQ(e.noc_energy_pj, f.noc_energy_pj);
    EXPECT_EQ(e.noc_bytes, f.noc_bytes);
    EXPECT_EQ(e.dram_bytes, f.dram_bytes);
    EXPECT_TRUE(std::signbit(f.dram_bytes) == std::signbit(e.dram_bytes));
    EXPECT_EQ(e.spatial_utilization, f.spatial_utilization);
    EXPECT_EQ(e.total_macs, f.total_macs);
    EXPECT_EQ(e.reads_bytes, f.reads_bytes);
    EXPECT_EQ(e.writes_bytes, f.writes_bytes);
    EXPECT_EQ(e.level_cycles, f.level_cycles);
    EXPECT_EQ(e.level_energy_pj, f.level_energy_pj);
    EXPECT_EQ(a.result.mapping, b.result.mapping);
}

TEST(CachestoreLog, InsertRecordRoundTripsBitExact)
{
    const LogRecord original = sampleInsert(7);
    const std::string payload = encodeRecord(original);
    LogRecord decoded;
    ASSERT_TRUE(decodeRecord(payload, &decoded));
    expectRecordsEqual(original, decoded);
}

TEST(CachestoreLog, EvictRecordRoundTrips)
{
    LogRecord original;
    original.kind = LogRecord::Kind::kEvict;
    original.seq = 12345678901234ULL;
    original.key = {"layer", "arch", "sched", "eval"};
    const std::string payload = encodeRecord(original);
    LogRecord decoded;
    ASSERT_TRUE(decodeRecord(payload, &decoded));
    EXPECT_EQ(decoded.kind, LogRecord::Kind::kEvict);
    EXPECT_EQ(decoded.seq, original.seq);
    EXPECT_EQ(decoded.key.flat(), original.key.flat());
}

TEST(CachestoreLog, DecodeRejectsTruncationAtEveryBoundary)
{
    const std::string payload = encodeRecord(sampleInsert(1));
    LogRecord decoded;
    // Every strict prefix must fail cleanly, never crash or accept.
    for (std::size_t n = 0; n < payload.size(); ++n) {
        EXPECT_FALSE(
            decodeRecord(std::string_view(payload.data(), n), &decoded))
            << "accepted a " << n << "-byte prefix of "
            << payload.size();
    }
    // Trailing junk is rejected too (pos must land exactly on size).
    EXPECT_FALSE(decodeRecord(payload + "x", &decoded));
    EXPECT_TRUE(decodeRecord(payload, &decoded));
}

TEST(CachestoreLog, WriterProducesReplayableLog)
{
    TempLog file("writer");
    LogWriter writer;
    ASSERT_TRUE(writer.open(file.path(), 3, 8, 0, false).ok());
    std::vector<LogRecord> originals;
    for (int i = 0; i < 5; ++i) {
        originals.push_back(sampleInsert(i));
        ASSERT_TRUE(writer.append(encodeRecord(originals.back())).ok());
    }
    ASSERT_TRUE(writer.sync().ok());
    writer.close();

    const LogReadResult read = readLog(file.path());
    ASSERT_TRUE(read.ok) << read.error;
    EXPECT_EQ(read.shard_index, 3u);
    EXPECT_EQ(read.num_shards, 8u);
    EXPECT_EQ(read.records_skipped, 0);
    EXPECT_FALSE(read.torn_tail);
    EXPECT_EQ(read.valid_bytes,
              std::filesystem::file_size(file.path()));
    ASSERT_EQ(read.records.size(), originals.size());
    ASSERT_EQ(read.framed_bytes.size(), originals.size());
    for (std::size_t i = 0; i < originals.size(); ++i) {
        expectRecordsEqual(originals[i], read.records[i]);
        EXPECT_EQ(read.framed_bytes[i],
                  framedBytes(encodeRecord(originals[i])));
    }
}

TEST(CachestoreLog, StreamingVisitorCanStopEarly)
{
    TempLog file("stream");
    LogWriter writer;
    ASSERT_TRUE(writer.open(file.path(), 0, 1, 0, false).ok());
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(writer.append(encodeRecord(sampleInsert(i))).ok());
    writer.close();

    int seen = 0;
    const LogReadResult read =
        readLog(file.path(), [&](LogRecord&&, std::uint32_t) {
            return ++seen < 3;
        });
    ASSERT_TRUE(read.ok) << read.error;
    EXPECT_EQ(seen, 3);
    EXPECT_TRUE(read.records.empty()); // streaming never accumulates
    // The early stop only cut the *visit*, not the valid prefix scan
    // bookkeeping for the records actually visited.
    EXPECT_GT(read.valid_bytes, logHeaderBytes());
}

/** Append N good records, then damage the tail per @p mutilate and
 *  assert recovery keeps exactly the good prefix. */
void
expectTornTailRecovery(
    const std::string& name, int keep,
    const std::function<void(const std::string& path)>& mutilate)
{
    TempLog file(name);
    LogWriter writer;
    ASSERT_TRUE(writer.open(file.path(), 0, 1, 0, false).ok());
    std::uint64_t good_bytes = logHeaderBytes();
    for (int i = 0; i < 4; ++i) {
        const std::string payload = encodeRecord(sampleInsert(i));
        ASSERT_TRUE(writer.append(payload).ok());
        if (i < keep)
            good_bytes += framedBytes(payload);
    }
    writer.close();
    mutilate(file.path());

    LogReadResult read = readLog(file.path());
    ASSERT_TRUE(read.ok) << read.error;
    EXPECT_EQ(read.records.size(), static_cast<std::size_t>(keep));
    EXPECT_EQ(read.records_skipped, 1);
    EXPECT_TRUE(read.torn_tail);
    EXPECT_EQ(read.valid_bytes, good_bytes);

    // Reopening the writer at valid_bytes truncates the tail; the log
    // then appends cleanly and replays without damage.
    LogWriter recovered;
    ASSERT_TRUE(
        recovered.open(file.path(), 0, 1, read.valid_bytes, false).ok());
    ASSERT_TRUE(recovered.append(encodeRecord(sampleInsert(99))).ok());
    recovered.close();
    read = readLog(file.path());
    ASSERT_TRUE(read.ok) << read.error;
    EXPECT_EQ(read.records.size(), static_cast<std::size_t>(keep) + 1);
    EXPECT_EQ(read.records_skipped, 0);
    EXPECT_FALSE(read.torn_tail);
    EXPECT_EQ(read.records.back().key.arch_key, "simba/pe99");
}

TEST(CachestoreLog, RecoversTornMidFrameHeader)
{
    // Crash after 3 records + 5 bytes of the 4th frame's header.
    expectTornTailRecovery("torn_header", 3, [](const std::string& path) {
        const auto size = std::filesystem::file_size(path);
        const std::string payload = encodeRecord(sampleInsert(3));
        std::filesystem::resize_file(
            path, size - framedBytes(payload) + 5);
    });
}

TEST(CachestoreLog, RecoversTornMidPayload)
{
    expectTornTailRecovery("torn_payload", 3, [](const std::string& path) {
        const auto size = std::filesystem::file_size(path);
        std::filesystem::resize_file(path, size - 11);
    });
}

TEST(CachestoreLog, RecoversBitFlippedTailRecord)
{
    expectTornTailRecovery("bit_flip", 3, [](const std::string& path) {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(-20, std::ios::end); // inside the last payload
        char b = 0;
        f.seekg(-20, std::ios::end);
        f.get(b);
        f.seekp(-20, std::ios::end);
        f.put(static_cast<char>(b ^ 0x40));
    });
}

TEST(CachestoreLog, MissingFileIsAnEmptyShard)
{
    const LogReadResult read = readLog("cosa_cachestore_no_such.log");
    EXPECT_TRUE(read.ok);
    EXPECT_TRUE(read.records.empty());
    EXPECT_EQ(read.valid_bytes, 0u);
}

TEST(CachestoreLog, ForeignFileIsAHardError)
{
    TempLog file("foreign");
    std::ofstream(file.path()) << "definitely not a shard log\n";
    const LogReadResult read = readLog(file.path());
    EXPECT_FALSE(read.ok);
    EXPECT_NE(read.error.find("not a cosa cachestore shard log"),
              std::string::npos);
}

} // namespace
} // namespace cachestore
} // namespace cosa

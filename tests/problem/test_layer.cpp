#include <gtest/gtest.h>

#include "problem/layer.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

TEST(Dims, MatrixAMatchesPaperTableIV)
{
    // Weights relate to R, S, C, K.
    EXPECT_TRUE(dimRelatesToTensor(Dim::R, Tensor::Weights));
    EXPECT_TRUE(dimRelatesToTensor(Dim::S, Tensor::Weights));
    EXPECT_TRUE(dimRelatesToTensor(Dim::C, Tensor::Weights));
    EXPECT_TRUE(dimRelatesToTensor(Dim::K, Tensor::Weights));
    EXPECT_FALSE(dimRelatesToTensor(Dim::P, Tensor::Weights));
    EXPECT_FALSE(dimRelatesToTensor(Dim::Q, Tensor::Weights));
    EXPECT_FALSE(dimRelatesToTensor(Dim::N, Tensor::Weights));
    // Inputs relate to R, S, P, Q, C, N but not K.
    EXPECT_TRUE(dimRelatesToTensor(Dim::P, Tensor::Inputs));
    EXPECT_TRUE(dimRelatesToTensor(Dim::C, Tensor::Inputs));
    EXPECT_TRUE(dimRelatesToTensor(Dim::N, Tensor::Inputs));
    EXPECT_FALSE(dimRelatesToTensor(Dim::K, Tensor::Inputs));
    // Outputs relate to P, Q, K, N but not R, S, C.
    EXPECT_TRUE(dimRelatesToTensor(Dim::P, Tensor::Outputs));
    EXPECT_TRUE(dimRelatesToTensor(Dim::K, Tensor::Outputs));
    EXPECT_FALSE(dimRelatesToTensor(Dim::C, Tensor::Outputs));
    EXPECT_FALSE(dimRelatesToTensor(Dim::R, Tensor::Outputs));
}

TEST(LayerSpec, FromLabelParsesPaperConvention)
{
    const LayerSpec spec = LayerSpec::fromLabel("3_14_256_512_2");
    EXPECT_EQ(spec.r, 3);
    EXPECT_EQ(spec.s, 3); // S = R
    EXPECT_EQ(spec.p, 14);
    EXPECT_EQ(spec.q, 14); // Q = P
    EXPECT_EQ(spec.c, 256);
    EXPECT_EQ(spec.k, 512);
    EXPECT_EQ(spec.stride, 2);
    EXPECT_EQ(spec.n, 1);
    EXPECT_EQ(spec.label(), "3_14_256_512_2");
}

TEST(LayerSpec, InputHalo)
{
    const LayerSpec spec = LayerSpec::fromLabel("3_14_256_512_2");
    EXPECT_EQ(spec.inputWidth(), (14 - 1) * 2 + 3);
    EXPECT_EQ(spec.inputHeight(), (14 - 1) * 2 + 3);
}

TEST(LayerSpec, MacsAndTensorSizes)
{
    LayerSpec spec;
    spec.r = spec.s = 3;
    spec.p = spec.q = 4;
    spec.c = 8;
    spec.k = 16;
    spec.n = 2;
    EXPECT_EQ(spec.macs(), 3LL * 3 * 4 * 4 * 8 * 16 * 2);
    EXPECT_EQ(spec.tensorElements(Tensor::Weights), 3LL * 3 * 8 * 16);
    EXPECT_EQ(spec.tensorElements(Tensor::Outputs), 4LL * 4 * 16 * 2);
    EXPECT_EQ(spec.tensorElements(Tensor::Inputs), 6LL * 6 * 8 * 2);
}

TEST(FactorPool, CoversAllBounds)
{
    const LayerSpec spec = LayerSpec::fromLabel("3_14_256_512_1");
    FactorPool pool(spec);
    for (Dim d : kAllDims) {
        std::int64_t prod = 1;
        for (int i : pool.indicesOfDim(d))
            prod *= pool[i].value;
        EXPECT_EQ(prod, spec.bound(d)) << dimName(d);
        EXPECT_EQ(pool.paddedBound(d), spec.bound(d));
    }
    EXPECT_FALSE(pool.anyPadded());
}

TEST(FactorPool, FactorCountMatchesFactorization)
{
    // 3_14_256_512_1: R=S=3 (1 each), P=Q=14 (2 each: 2*7),
    // C=256 (8 twos), K=512 (9 twos), N=1 (none). Total 1+1+2+2+8+9 = 23.
    const LayerSpec spec = LayerSpec::fromLabel("3_14_256_512_1");
    FactorPool pool(spec);
    EXPECT_EQ(pool.size(), 23);
}

TEST(FactorPool, PadsLargePrimes)
{
    LayerSpec spec;
    spec.c = 1009; // prime larger than the smoothness threshold
    FactorPool pool(spec, /*max_prime=*/7);
    EXPECT_TRUE(pool.anyPadded());
    EXPECT_GE(pool.paddedBound(Dim::C), 1009);
    for (int i : pool.indicesOfDim(Dim::C))
        EXPECT_LE(pool[i].value, 7);
}

TEST(Workloads, SuiteSizesMatchPaperFigures)
{
    EXPECT_EQ(workloads::alexNet().layers.size(), 8u);
    EXPECT_EQ(workloads::resNet50().layers.size(), 23u);
    EXPECT_EQ(workloads::resNeXt50().layers.size(), 25u);
    EXPECT_EQ(workloads::deepBench().layers.size(), 9u);
    EXPECT_EQ(workloads::allSuites().size(), 4u);
}

TEST(Workloads, AllLayersWellFormed)
{
    for (const auto& suite : workloads::allSuites()) {
        for (const auto& layer : suite.layers) {
            EXPECT_GT(layer.macs(), 0) << layer.name;
            for (Dim d : kAllDims)
                EXPECT_GE(layer.bound(d), 1) << layer.name;
        }
    }
}

TEST(Workloads, FigureLayersMatchPaperText)
{
    const LayerSpec f1 = workloads::fig1Layer();
    EXPECT_EQ(f1.r, 3);
    EXPECT_EQ(f1.c, 256);
    EXPECT_EQ(f1.k, 256);
    EXPECT_EQ(f1.p, 14);

    const LayerSpec f3 = workloads::fig3Layer();
    EXPECT_EQ(f3.p, 8);
    EXPECT_EQ(f3.c, 32);
    EXPECT_EQ(f3.k, 1024);

    const LayerSpec f4 = workloads::fig4Layer();
    EXPECT_EQ(f4.r, 1);
    EXPECT_EQ(f4.p, 16);
    EXPECT_EQ(f4.c, 256);

    const LayerSpec l1 = workloads::listing1Layer();
    EXPECT_EQ(l1.n, 3);
    EXPECT_EQ(l1.p, 28);
}

TEST(Workloads, ResNetContainsFig8Layer)
{
    const auto resnet = workloads::resNet50();
    bool found = false;
    for (const auto& layer : resnet.layers)
        found = found || layer.name == "3_7_512_512_1";
    EXPECT_TRUE(found);
    EXPECT_EQ(workloads::fig8Layer().name, "3_7_512_512_1");
}

} // namespace
} // namespace cosa

#include <gtest/gtest.h>

#include "mapper/exhaustive_mapper.hpp"
#include "mapper/hybrid_mapper.hpp"
#include "mapper/random_mapper.hpp"
#include "problem/workloads.hpp"

namespace cosa {
namespace {

TEST(RandomMapper, FindsValidSchedules)
{
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    RandomMapper mapper;
    const SearchResult result = mapper.schedule(layer, arch);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(result.eval.valid);
    EXPECT_LE(result.stats.valid_evaluated, 5);
    EXPECT_GE(result.stats.samples, result.stats.valid_evaluated);
    EXPECT_TRUE(validateMapping(result.mapping, layer, arch).valid);
}

TEST(RandomMapper, DeterministicForSameSeed)
{
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    RandomMapperConfig config;
    config.seed = 123;
    const SearchResult a = RandomMapper(config).schedule(layer, arch);
    const SearchResult b = RandomMapper(config).schedule(layer, arch);
    ASSERT_TRUE(a.found && b.found);
    EXPECT_EQ(a.eval.cycles, b.eval.cycles);
    EXPECT_EQ(a.mapping, b.mapping);
}

TEST(RandomMapper, SampleValidReturnsRequestedCount)
{
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    RandomMapper mapper;
    const auto samples = mapper.sampleValid(layer, arch, 20, 100'000);
    EXPECT_EQ(samples.size(), 20u);
    for (const auto& [mapping, ev] : samples) {
        EXPECT_TRUE(ev.valid);
        EXPECT_GT(ev.cycles, 0.0);
    }
}

TEST(RandomMapper, ValidScheduleLatenciesSpreadWidely)
{
    // The Fig. 1 premise: valid schedules differ by a large factor.
    const LayerSpec layer = workloads::fig1Layer();
    const ArchSpec arch = ArchSpec::simbaBaseline();
    RandomMapper mapper;
    const auto samples = mapper.sampleValid(layer, arch, 100, 500'000);
    ASSERT_GE(samples.size(), 50u);
    double best = samples[0].second.cycles, worst = best;
    for (const auto& [mapping, ev] : samples) {
        best = std::min(best, ev.cycles);
        worst = std::max(worst, ev.cycles);
    }
    EXPECT_GT(worst / best, 3.0);
}

TEST(HybridMapper, BeatsOrMatchesRandom)
{
    const LayerSpec layer = LayerSpec::fromLabel("3_14_128_256_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    HybridMapperConfig config;
    config.num_threads = 4;
    config.victory_condition = 150;
    HybridMapper hybrid(config);
    RandomMapper random;
    const SearchResult r_hybrid = hybrid.schedule(layer, arch);
    const SearchResult r_random = random.schedule(layer, arch);
    ASSERT_TRUE(r_hybrid.found && r_random.found);
    // The hybrid search evaluates orders of magnitude more candidates.
    EXPECT_GT(r_hybrid.stats.valid_evaluated,
              r_random.stats.valid_evaluated);
    EXPECT_LE(r_hybrid.eval.cycles, r_random.eval.cycles * 1.05);
    EXPECT_TRUE(validateMapping(r_hybrid.mapping, layer, arch).valid);
}

TEST(HybridMapper, RespectsTerminationCondition)
{
    const LayerSpec layer = LayerSpec::fromLabel("1_7_512_2048_1");
    const ArchSpec arch = ArchSpec::simbaBaseline();
    HybridMapperConfig config;
    config.num_threads = 2;
    config.victory_condition = 30;
    config.max_samples_per_thread = 50'000;
    HybridMapper hybrid(config);
    const SearchResult result = hybrid.schedule(layer, arch);
    EXPECT_TRUE(result.found);
    EXPECT_LT(result.stats.samples, 2 * config.max_samples_per_thread);
}

TEST(ExhaustiveMapper, AgreesWithItselfAndValid)
{
    // Tiny layer so the assignment space stays enumerable.
    LayerSpec layer;
    layer.name = "tiny";
    layer.c = 4;
    layer.k = 2;
    layer.p = layer.q = 2;
    const ArchSpec arch = ArchSpec::simbaBaseline();
    ExhaustiveMapper mapper;
    const SearchResult result = mapper.schedule(layer, arch);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(validateMapping(result.mapping, layer, arch).valid);
    EXPECT_GT(result.stats.valid_evaluated, 0);
}

TEST(ExhaustiveMapper, OracleBoundsOtherSchedulers)
{
    // On a tiny layer no scheduler may beat the exhaustive optimum.
    LayerSpec layer;
    layer.name = "tiny2";
    layer.c = 8;
    layer.k = 2;
    layer.p = layer.q = 2;
    const ArchSpec arch = ArchSpec::simbaBaseline();
    ExhaustiveMapper exhaustive;
    RandomMapper random;
    const SearchResult best = exhaustive.schedule(layer, arch);
    const SearchResult rnd = random.schedule(layer, arch);
    ASSERT_TRUE(best.found);
    if (rnd.found)
        EXPECT_GE(rnd.eval.cycles, best.eval.cycles * 0.999);
}

TEST(SearchObjective, ObjectiveValueSelectsMetric)
{
    Evaluation ev;
    ev.cycles = 10.0;
    ev.energy_pj = 5.0;
    EXPECT_DOUBLE_EQ(objectiveValue(ev, SearchObjective::Latency), 10.0);
    EXPECT_DOUBLE_EQ(objectiveValue(ev, SearchObjective::Energy), 5.0);
    EXPECT_DOUBLE_EQ(objectiveValue(ev, SearchObjective::Edp), 50.0);
}

} // namespace
} // namespace cosa
